"""Public-suffix handling and registrable-domain (eTLD+1) extraction.

The paper's §4 attribution ("the website and CP second-level domains are the
same, e.g. ``www.foo.com`` and ``ad.foo.net``") and the Topics API itself
both reason about *registrable domains*: the public suffix plus one label.
Real browsers ship Mozilla's Public Suffix List; we embed the subset of
rules the synthetic web uses, with the same longest-match semantics
(including multi-label suffixes such as ``co.uk``) so the logic is faithful.
"""

from __future__ import annotations

from typing import Iterable

# Multi-label public suffixes present in the synthetic web.  Single-label
# TLDs (com, net, org, country codes, ...) need no listing: the fallback rule
# "*" of the real PSL treats any unknown final label as a public suffix.
_DEFAULT_MULTI_LABEL_SUFFIXES: tuple[str, ...] = (
    "co.uk",
    "org.uk",
    "ac.uk",
    "gov.uk",
    "co.jp",
    "ne.jp",
    "or.jp",
    "ac.jp",
    "com.br",
    "net.br",
    "org.br",
    "com.au",
    "net.au",
    "com.cn",
    "com.ru",
    "co.in",
    "co.kr",
    "com.tr",
    "com.mx",
    "com.ar",
    "co.za",
    "com.pl",
    "com.ua",
)


#: Memoization bound per PSL instance.  A 50k-site world produces well
#: under this many distinct hostnames; the segmented eviction policy
#: keeps adversarial/synthetic corpora from growing the dict unbounded.
_CACHE_LIMIT = 65_536


class PublicSuffixList:
    """Longest-match public-suffix lookups over an embedded rule set.

    Lookups are memoized per instance: the crawl hot path resolves the
    same caller/third-party hostnames millions of times per campaign
    (every Topics call gates on an eTLD+1, every dataset row normalises
    its parties), so suffix and registrable-domain results are cached
    keyed on the raw hostname string.  Malformed hostnames are *not*
    cached — they raise ``ValueError`` exactly as the uncached path does.

    Eviction is segmented-LRU: two generations of at most half the limit
    each.  When the live generation fills up it becomes the stale
    generation (whose previous contents are dropped) and a fresh live
    generation starts; a stale hit promotes the entry back into the live
    generation.  Any hostname touched at least once per generation —
    i.e. every genuinely hot entry — therefore survives crossing the
    limit, while one-shot hostnames age out.  Amortised O(1), unlike a
    wholesale ``clear()`` which cold-started *every* caller at once.
    """

    def __init__(
        self,
        multi_label_suffixes: Iterable[str] | None = None,
        cache_limit: int | None = None,
    ) -> None:
        rules = (
            _DEFAULT_MULTI_LABEL_SUFFIXES
            if multi_label_suffixes is None
            else tuple(multi_label_suffixes)
        )
        self._multi_label: frozenset[str] = frozenset(s.lower() for s in rules)
        for suffix in self._multi_label:
            if "." not in suffix:
                raise ValueError(f"multi-label suffix expected, got {suffix!r}")
        limit = _CACHE_LIMIT if cache_limit is None else cache_limit
        if limit < 2:
            raise ValueError("cache_limit must be at least 2")
        #: per-generation bound; live + stale together never exceed the limit
        self._generation_limit = limit // 2
        #: hostname -> (public suffix, registrable domain): live generation
        self._cache: dict[str, tuple[str, str]] = {}
        #: previous generation, consulted (and promoted from) on live misses
        self._stale: dict[str, tuple[str, str]] = {}

    def _lookup(self, hostname: str) -> tuple[str, str]:
        cached = self._cache.get(hostname)
        if cached is not None:
            return cached
        entry = self._stale.get(hostname)
        if entry is None:
            labels = _labels(hostname)
            suffix = labels[-1]
            if len(labels) >= 2:
                two = ".".join(labels[-2:])
                if two in self._multi_label:
                    suffix = two
            suffix_len = suffix.count(".") + 1
            if len(labels) <= suffix_len:
                # A bare public suffix is returned unchanged — the same
                # graceful fallback Chromium applies.
                registrable = hostname.lower().rstrip(".")
            else:
                registrable = ".".join(labels[-(suffix_len + 1):])
            entry = (suffix, registrable)
        if len(self._cache) >= self._generation_limit:
            self._stale = self._cache
            self._cache = {}
        self._cache[hostname] = entry
        return entry

    def public_suffix(self, hostname: str) -> str:
        """Return the public suffix of ``hostname``.

        >>> PublicSuffixList().public_suffix("www.example.co.uk")
        'co.uk'
        >>> PublicSuffixList().public_suffix("ad.foo.net")
        'net'
        """
        return self._lookup(hostname)[0]

    def registrable_domain(self, hostname: str) -> str:
        """Return the eTLD+1 of ``hostname``.

        A hostname that *is* a bare public suffix is returned unchanged —
        the same graceful fallback Chromium applies.

        >>> psl = PublicSuffixList()
        >>> psl.registrable_domain("www.shop.example.co.uk")
        'example.co.uk'
        >>> psl.registrable_domain("ad.foo.net")
        'foo.net'
        """
        return self._lookup(hostname)[1]

    def second_level_name(self, hostname: str) -> str:
        """Return the label left of the public suffix — the paper's notion of
        "second-level domain" used to match ``www.foo.com`` with ``ad.foo.net``.

        >>> PublicSuffixList().second_level_name("www.foo.com")
        'foo'
        >>> PublicSuffixList().second_level_name("ad.foo.net")
        'foo'
        """
        registrable = self.registrable_domain(hostname)
        return registrable.split(".", 1)[0]


_DEFAULT_PSL = PublicSuffixList()


def etld_plus_one(hostname: str) -> str:
    """Module-level shorthand for the default PSL's registrable domain."""
    return _DEFAULT_PSL.registrable_domain(hostname)


def registrable_domain(hostname: str) -> str:
    """Alias of :func:`etld_plus_one` matching spec terminology."""
    return _DEFAULT_PSL.registrable_domain(hostname)


def second_level_name(hostname: str) -> str:
    """Module-level shorthand for the default PSL's second-level name."""
    return _DEFAULT_PSL.second_level_name(hostname)


def same_second_level(host_a: str, host_b: str) -> bool:
    """True when two hosts share the paper's "second-level domain" notion.

    This deliberately ignores the suffix: ``www.foo.com`` and ``ad.foo.net``
    match, exactly as in the paper's §4 attribution.
    """
    return second_level_name(host_a) == second_level_name(host_b)


def _labels(hostname: str) -> list[str]:
    cleaned = hostname.strip().rstrip(".").lower()
    if not cleaned:
        raise ValueError("empty hostname")
    labels = cleaned.split(".")
    if any(not label for label in labels):
        raise ValueError(f"malformed hostname: {hostname!r}")
    return labels
