"""Shared execution backends: serial, thread, process.

Originally private to the crawl plane (``repro.crawler.executor``), the
backend strategies turned out to be workload-agnostic: they map a worker
function over a sequence of picklable tasks and return the results in
task order.  The population data plane (``repro.users.columnar`` trace
generation, ``repro.privacy.attack`` ranking) shards its work over the
same three strategies, so the strategy layer lives here and the crawl
executor re-exports it unchanged:

* ``serial``  — run tasks one after another in the calling thread (the
  reference executor: zero scheduling noise, easiest to debug);
* ``thread``  — one worker thread per task (cheap to start, shares
  memory, GIL-bound);
* ``process`` — worker **processes** via ``ProcessPoolExecutor`` on the
  spawn context: true multi-core parallelism for CPU-bound loops.
  Tasks and results must be picklable, and the worker function must be
  importable (module-level) in a fresh interpreter.

The backend is chosen per run: explicitly (``backend=`` / ``--backend``),
or via the ``REPRO_CRAWL_BACKEND`` environment variable, defaulting to
``thread``.  Every workload built on these strategies is required to be
deterministic and order-independent per task, so all three backends
produce byte-identical outputs — the tests pin this for crawls and for
population traces alike.
"""

from __future__ import annotations

import atexit
import multiprocessing
import os
import pickle
from concurrent.futures import (
    FIRST_COMPLETED,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
    wait,
)
from concurrent.futures.process import BrokenProcessPool
from typing import Callable, Iterator, Sequence, TypeVar

_T = TypeVar("_T")
_R = TypeVar("_R")

#: Environment variable consulted when no backend is named explicitly.
BACKEND_ENV_VAR = "REPRO_CRAWL_BACKEND"

#: Valid backend names, in documentation order.
BACKEND_NAMES = ("serial", "thread", "process")

#: The default when neither the caller nor the environment chooses.
DEFAULT_BACKEND = "thread"


class ExecutionBackend:
    """Strategy interface: run a function over task inputs, in order."""

    name: str = "abstract"

    def map(
        self, fn: Callable[[_T], _R], items: Sequence[_T]
    ) -> list[_R]:  # pragma: no cover - interface
        raise NotImplementedError

    def stream(
        self, fn: Callable[[_T], _R], items: Sequence[_T]
    ) -> Iterator[tuple[int, _R]]:
        """Yield ``(index, result)`` pairs as tasks complete.

        Same contract as :meth:`map` — every item runs exactly once and
        every result is yielded exactly once — but delivery order is
        completion order, so a consumer can act on each finished task
        (stream it, persist it) while slower siblings are still running.
        The first task exception propagates to the consumer after the
        in-flight siblings have been allowed to finish (they hold
        resources — checkpoints, world caches — that must settle).
        Callers needing positional results collect into ``[None] * n``.
        """
        raise NotImplementedError  # pragma: no cover - interface


def _stream_pool(pool, fn, items) -> Iterator[tuple[int, _R]]:
    """Shared completion-order streaming over a concurrent.futures pool.

    On a task failure the remaining futures are drained (awaited, their
    own errors discarded) before the first failure is re-raised, so the
    pool is quiescent by the time the caller sees the exception.
    """
    futures = {pool.submit(fn, item): index for index, item in enumerate(items)}
    pending = set(futures)
    failure: BaseException | None = None
    while pending:
        done, pending = wait(pending, return_when=FIRST_COMPLETED)
        for future in sorted(done, key=futures.__getitem__):
            try:
                result = future.result()
            except BaseException as exc:  # noqa: BLE001 — drained, then re-raised
                if failure is None:
                    failure = exc
                continue
            if failure is None:
                yield futures[future], result
    if failure is not None:
        raise failure


class SerialBackend(ExecutionBackend):
    """Run tasks one after another in the calling thread."""

    name = "serial"

    def map(self, fn: Callable[[_T], _R], items: Sequence[_T]) -> list[_R]:
        return [fn(item) for item in items]

    def stream(
        self, fn: Callable[[_T], _R], items: Sequence[_T]
    ) -> Iterator[tuple[int, _R]]:
        for index, item in enumerate(items):
            yield index, fn(item)


class ThreadBackend(ExecutionBackend):
    """One worker thread per task (concurrency, not parallelism)."""

    name = "thread"

    def __init__(self, max_workers: int) -> None:
        if max_workers <= 0:
            raise ValueError("max_workers must be positive")
        self.max_workers = max_workers

    def map(self, fn: Callable[[_T], _R], items: Sequence[_T]) -> list[_R]:
        if not items:
            return []
        with ThreadPoolExecutor(max_workers=self.max_workers) as pool:
            return list(pool.map(fn, items))

    def stream(
        self, fn: Callable[[_T], _R], items: Sequence[_T]
    ) -> Iterator[tuple[int, _R]]:
        if not items:
            return
        with ThreadPoolExecutor(max_workers=self.max_workers) as pool:
            yield from _stream_pool(pool, fn, items)


#: Live process pools, keyed by worker count.  Reused across runs so
#: worker-side caches (worlds, populations) survive between runs in one
#: session.
_PROCESS_POOLS: dict[int, ProcessPoolExecutor] = {}


def _process_pool(max_workers: int) -> ProcessPoolExecutor:
    pool = _PROCESS_POOLS.get(max_workers)
    if pool is None:
        pool = ProcessPoolExecutor(
            max_workers=max_workers,
            mp_context=multiprocessing.get_context("spawn"),
        )
        _PROCESS_POOLS[max_workers] = pool
    return pool


@atexit.register
def _shutdown_process_pools() -> None:
    for pool in _PROCESS_POOLS.values():
        pool.shutdown(wait=False, cancel_futures=True)
    _PROCESS_POOLS.clear()


class ProcessBackend(ExecutionBackend):
    """One worker process per task: true multi-core parallelism.

    Requires picklable tasks and a module-level worker function; worker
    processes are spawned (not forked), so they import the package fresh
    and share no state with the parent beyond what the task carries.
    """

    name = "process"

    def __init__(self, max_workers: int) -> None:
        if max_workers <= 0:
            raise ValueError("max_workers must be positive")
        self.max_workers = max_workers

    def map(self, fn: Callable[[_T], _R], items: Sequence[_T]) -> list[_R]:
        if not items:
            return []
        pool = _process_pool(self.max_workers)
        try:
            return list(pool.map(fn, items))
        except BrokenProcessPool:
            # A worker died hard (OOM, signal); the pool is unusable.
            # Evict it so the next run starts a healthy one.
            _PROCESS_POOLS.pop(self.max_workers, None)
            pool.shutdown(wait=False, cancel_futures=True)
            raise

    def stream(
        self, fn: Callable[[_T], _R], items: Sequence[_T]
    ) -> Iterator[tuple[int, _R]]:
        if not items:
            return
        pool = _process_pool(self.max_workers)
        try:
            yield from _stream_pool(pool, fn, items)
        except BrokenProcessPool:
            _PROCESS_POOLS.pop(self.max_workers, None)
            pool.shutdown(wait=False, cancel_futures=True)
            raise


def resolve_backend_name(name: str | None = None) -> str:
    """The effective backend name: explicit > environment > default."""
    resolved = name or os.environ.get(BACKEND_ENV_VAR) or DEFAULT_BACKEND
    resolved = resolved.strip().lower()
    if resolved not in BACKEND_NAMES:
        raise ValueError(
            f"unknown crawl backend {resolved!r}; expected one of "
            f"{', '.join(BACKEND_NAMES)}"
        )
    return resolved


def create_backend(
    backend: "str | ExecutionBackend | None", max_workers: int
) -> ExecutionBackend:
    """Materialise a backend from a name, an instance, or the environment."""
    if isinstance(backend, ExecutionBackend):
        return backend
    name = resolve_backend_name(backend)
    if name == "serial":
        return SerialBackend()
    if name == "process":
        return ProcessBackend(max_workers)
    return ThreadBackend(max_workers)


def is_picklable(value: object) -> bool:
    """Whether ``value`` survives the process-pool boundary."""
    try:
        pickle.dumps(value)
    except Exception:  # noqa: BLE001 — pickle raises a zoo of types
        return False
    return True
