"""Foundation utilities shared by every subsystem.

The reproduction is fully deterministic: all randomness flows through the
named streams of :mod:`repro.util.rng`, domain arithmetic goes through the
public-suffix logic of :mod:`repro.util.psl`, and simulated wall-clock time
is owned by :mod:`repro.util.timeline`.
"""

from repro.util.psl import PublicSuffixList, etld_plus_one, registrable_domain
from repro.util.rng import RngStream, derive_seed
from repro.util.timeline import EPOCH_DURATION, SimClock, Timestamp
from repro.util.urls import Url, origin_of, parse_url

__all__ = [
    "EPOCH_DURATION",
    "PublicSuffixList",
    "RngStream",
    "SimClock",
    "Timestamp",
    "Url",
    "derive_seed",
    "etld_plus_one",
    "origin_of",
    "parse_url",
    "registrable_domain",
]
