"""Simulated wall-clock time, dates and Topics epochs.

The reproduction never reads the real clock: every timestamp comes from a
:class:`SimClock` owned by the experiment.  The clock counts seconds from a
fixed simulation origin (2024-03-30T00:00:00Z — the day the paper's crawl
started) and knows how to convert to calendar dates for artefacts such as
attestation issue dates.
"""

from __future__ import annotations

import datetime as _dt
from dataclasses import dataclass

#: Topics API epoch length — one week, per the spec and paper §2.1.
EPOCH_DURATION: int = 7 * 24 * 3600

#: The simulation's time origin (paper crawl start date).
SIM_ORIGIN: _dt.datetime = _dt.datetime(2024, 3, 30, tzinfo=_dt.timezone.utc)

Timestamp = int  # seconds since SIM_ORIGIN (may be negative for history)


def timestamp_from_date(year: int, month: int, day: int) -> Timestamp:
    """Seconds from the simulation origin to midnight UTC of the given date.

    Dates before the origin yield negative timestamps, which is how the
    enrolment registry expresses attestations issued in 2023.

    >>> timestamp_from_date(2024, 3, 30)
    0
    >>> timestamp_from_date(2024, 3, 31)
    86400
    """
    moment = _dt.datetime(year, month, day, tzinfo=_dt.timezone.utc)
    return int((moment - SIM_ORIGIN).total_seconds())


def date_of(timestamp: Timestamp) -> _dt.date:
    """Calendar date (UTC) of a simulation timestamp."""
    return (SIM_ORIGIN + _dt.timedelta(seconds=timestamp)).date()


def epoch_index(timestamp: Timestamp) -> int:
    """Index of the Topics epoch containing ``timestamp``.

    Epoch 0 starts at the simulation origin; earlier times fall in negative
    epochs (floor division keeps the arithmetic consistent either side).

    >>> epoch_index(0)
    0
    >>> epoch_index(EPOCH_DURATION - 1)
    0
    >>> epoch_index(EPOCH_DURATION)
    1
    >>> epoch_index(-1)
    -1
    """
    return timestamp // EPOCH_DURATION


@dataclass
class SimClock:
    """A monotonically advancing simulated clock.

    Components share one clock instance; :meth:`advance` models time passing
    (page loads, inter-visit gaps) and :meth:`now` stamps events.
    """

    current: Timestamp = 0

    def now(self) -> Timestamp:
        """Current simulated time."""
        return self.current

    def advance(self, seconds: int) -> Timestamp:
        """Advance the clock and return the new time."""
        if seconds < 0:
            raise ValueError("clock cannot move backwards")
        self.current += seconds
        return self.current

    def advance_to(self, timestamp: Timestamp) -> Timestamp:
        """Jump forward to an absolute time (no-op if already past it)."""
        if timestamp > self.current:
            self.current = timestamp
        return self.current

    @property
    def epoch(self) -> int:
        """The Topics epoch the clock currently sits in."""
        return epoch_index(self.current)
