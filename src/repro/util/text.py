"""Small text helpers: tokenisation, slugs and deterministic name synthesis.

Used by the site classifier (hostname token features), the web generator
(synthesising plausible domain names at scale) and the consent-banner
matcher (case/punctuation-insensitive keyword search).
"""

from __future__ import annotations

import hashlib
import re

_TOKEN_RE = re.compile(r"[a-z0-9]+")

# Syllable pools for synthetic domain names.  Chosen to be pronounceable and
# collision-light; the generator additionally de-duplicates.
_NAME_HEADS = (
    "news", "shop", "tech", "media", "blog", "game", "sport", "travel",
    "food", "auto", "health", "music", "film", "book", "home", "job",
    "bank", "cloud", "data", "meta", "pixel", "stream", "market", "daily",
    "super", "hyper", "prime", "star", "blue", "red", "green", "alpha",
    "vista", "nova", "zen", "flux", "echo", "orbit", "pulse", "spark",
)
_NAME_TAILS = (
    "hub", "zone", "spot", "base", "land", "world", "press", "times",
    "port", "point", "wave", "line", "link", "net", "site", "page",
    "box", "lab", "works", "store", "mart", "deal", "view", "cast",
    "gram", "ly", "ify", "io", "eo", "ora", "ista", "ify", "aro", "ex",
)


def tokens(text: str) -> list[str]:
    """Lowercase alphanumeric tokens of a string.

    >>> tokens("Accept All Cookies!")
    ['accept', 'all', 'cookies']
    """
    return _TOKEN_RE.findall(text.lower())


def contains_keyword(text: str, keywords: list[str] | tuple[str, ...]) -> str | None:
    """Return the first keyword found in ``text`` (token-boundary aware),
    or None.  Multi-word keywords match as contiguous token sequences.

    >>> contains_keyword("Click to ACCEPT ALL and continue", ["accept all"])
    'accept all'
    >>> contains_keyword("unacceptable", ["accept"]) is None
    True
    """
    haystack = tokens(text)
    joined = " " + " ".join(haystack) + " "
    for keyword in keywords:
        needle = " " + " ".join(tokens(keyword)) + " "
        if needle in joined:
            return keyword
    return None


def stable_digest(*parts: str) -> int:
    """A process-stable 64-bit digest of the given strings.

    Unlike ``hash()``, this never varies across runs, so classifier
    decisions keyed on hostnames are reproducible.
    """
    # One C-level hash call over the same byte stream the incremental
    # update loop fed (each part NUL-terminated) — this sits under every
    # per-(caller, site) decision on the crawl hot path.
    payload = b"".join(part.encode("utf-8") + b"\x00" for part in parts)
    return int.from_bytes(hashlib.sha256(payload).digest()[:8], "big")


def synthesize_name(index: int, salt: str = "") -> str:
    """Deterministically synthesise a pronounceable domain label.

    Collisions are possible (the syllable space is finite); callers that
    need uniqueness de-duplicate with a seen-set and bump the index.

    >>> synthesize_name(0) == synthesize_name(0)
    True
    """
    digest = stable_digest(str(index), salt)
    head = _NAME_HEADS[digest % len(_NAME_HEADS)]
    tail = _NAME_TAILS[(digest // len(_NAME_HEADS)) % len(_NAME_TAILS)]
    residue = (digest // (len(_NAME_HEADS) * len(_NAME_TAILS))) % 10
    suffix = "" if residue < 4 else str(residue)
    return f"{head}{tail}{suffix}"
