"""Crash-safe filesystem primitives.

Checkpoints and archives must never be observable half-written: a crash
mid-write would otherwise leave a file that parses as a truncated (but
plausible) artefact.  Every writer here follows the classic
write-to-temp-then-rename protocol — the temp file lives in the target's
own directory so :func:`os.replace` stays an atomic same-filesystem
rename, and readers only ever see the old content or the new content,
never a prefix.
"""

from __future__ import annotations

import os
import threading
from pathlib import Path
from typing import Iterable


def atomic_write_text(path: str | Path, text: str) -> Path:
    """Atomically replace ``path`` with ``text``; returns the path.

    The content is flushed and fsynced before the rename, so a crash
    after :func:`atomic_write_text` returns cannot lose the write.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    # Temp names carry pid AND thread id: shard workers in one process
    # may atomically replace the same target (e.g. a shared manifest),
    # and a shared temp name would let one thread rename away a file
    # another thread is still fsyncing.
    temp = path.parent / (
        f".{path.name}.tmp-{os.getpid()}-{threading.get_ident()}"
    )
    with temp.open("w", encoding="utf-8") as handle:
        handle.write(text)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(temp, path)
    return path


def atomic_write_lines(path: str | Path, lines: Iterable[str]) -> Path:
    """Atomically replace ``path`` with one line per item (JSONL writers)."""
    return atomic_write_text(path, "".join(f"{line}\n" for line in lines))
