"""Crash-safe filesystem primitives.

Checkpoints and archives must never be observable half-written: a crash
mid-write would otherwise leave a file that parses as a truncated (but
plausible) artefact.  Every writer here follows the classic
write-to-temp-then-rename protocol — the temp file lives in the target's
own directory so :func:`os.replace` stays an atomic same-filesystem
rename, and readers only ever see the old content or the new content,
never a prefix.
"""

from __future__ import annotations

import os
import threading
from pathlib import Path
from typing import Iterable


def atomic_write_text(path: str | Path, text: str) -> Path:
    """Atomically replace ``path`` with ``text``; returns the path.

    The content is flushed and fsynced before the rename, so a crash
    after :func:`atomic_write_text` returns cannot lose the write.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    # Temp names carry pid AND thread id: shard workers in one process
    # may atomically replace the same target (e.g. a shared manifest),
    # and a shared temp name would let one thread rename away a file
    # another thread is still fsyncing.
    temp = path.parent / (
        f".{path.name}.tmp-{os.getpid()}-{threading.get_ident()}"
    )
    with temp.open("w", encoding="utf-8") as handle:
        handle.write(text)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(temp, path)
    return path


def atomic_write_lines(path: str | Path, lines: Iterable[str]) -> Path:
    """Atomically replace ``path`` with one line per item (JSONL writers)."""
    return atomic_write_text(path, "".join(f"{line}\n" for line in lines))


class BufferedLineWriter:
    """Batch line-oriented writes into few large ``write()`` calls.

    Exporting a 50k-site campaign's trace used to issue two tiny
    ``handle.write()`` calls per event (payload + newline) — hundreds of
    thousands of buffer-layer crossings per export.  This writer joins
    lines into ~``batch_size``-line chunks and hands each chunk to the
    underlying handle in a single call.  Not thread-safe; exports are
    single-writer by construction.

    Usable as a context manager; a clean exit flushes the remaining
    batch, while exiting on an exception *discards* it — a failed export
    must not append a torn trailing batch to the file.  The underlying
    handle is NOT closed either way — the caller owns it.
    """

    def __init__(self, handle, batch_size: int = 1024) -> None:
        if batch_size <= 0:
            raise ValueError("batch_size must be positive")
        self._handle = handle
        self._batch_size = batch_size
        self._pending: list[str] = []

    def write_line(self, line: str) -> None:
        """Queue one line (newline appended) for the next batched write."""
        self._pending.append(line)
        if len(self._pending) >= self._batch_size:
            self.flush()

    def flush(self) -> None:
        """Write every pending line in one call (no-op when empty)."""
        if not self._pending:
            return
        self._handle.write("\n".join(self._pending) + "\n")
        self._pending.clear()

    def __enter__(self) -> "BufferedLineWriter":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is not None:
            # The export failed mid-stream: the queued lines never made it
            # to the handle and writing them now would fabricate a partial
            # batch after the failure point.  Drop them with the export.
            self._pending.clear()
            return
        self.flush()
