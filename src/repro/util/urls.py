"""Minimal URL model with browser-grade origin semantics.

Browsing-context origins are the crux of the paper's §4 finding, so the
reproduction carries its own small, strict URL type rather than threading
``urllib.parse`` tuples around: every resource, script and iframe source is
a :class:`Url`, and the *origin* (scheme, host, port) is computed exactly as
the HTML spec defines it.
"""

from __future__ import annotations

from dataclasses import dataclass

_DEFAULT_PORTS = {"http": 80, "https": 443}


@dataclass(frozen=True, slots=True)
class Url:
    """An absolute http(s) URL, normalised at construction."""

    scheme: str
    host: str
    port: int
    path: str = "/"
    query: str = ""

    def __post_init__(self) -> None:
        if self.scheme not in _DEFAULT_PORTS:
            raise ValueError(f"unsupported scheme: {self.scheme!r}")
        if not self.host or self.host != self.host.strip().lower():
            raise ValueError(f"host must be non-empty lowercase: {self.host!r}")
        if not (0 < self.port < 65536):
            raise ValueError(f"port out of range: {self.port}")
        if not self.path.startswith("/"):
            raise ValueError(f"path must be absolute: {self.path!r}")

    @property
    def origin(self) -> str:
        """Serialised origin — default ports are omitted, as browsers do.

        >>> parse_url("https://example.org/a/b?q=1").origin
        'https://example.org'
        """
        if self.port == _DEFAULT_PORTS[self.scheme]:
            return f"{self.scheme}://{self.host}"
        return f"{self.scheme}://{self.host}:{self.port}"

    def __str__(self) -> str:
        suffix = f"?{self.query}" if self.query else ""
        if self.port == _DEFAULT_PORTS[self.scheme]:
            return f"{self.scheme}://{self.host}{self.path}{suffix}"
        return f"{self.scheme}://{self.host}:{self.port}{self.path}{suffix}"

    def with_path(self, path: str, query: str = "") -> "Url":
        """Same origin, different path/query."""
        return Url(self.scheme, self.host, self.port, path, query)


def parse_url(raw: str) -> Url:
    """Parse an absolute http(s) URL string into a :class:`Url`.

    >>> parse_url("https://www.foo.com/ads/tag.js?id=9")
    Url(scheme='https', host='www.foo.com', port=443, path='/ads/tag.js', query='id=9')
    """
    stripped = raw.strip()
    scheme, sep, rest = stripped.partition("://")
    if not sep:
        raise ValueError(f"not an absolute URL: {raw!r}")
    scheme = scheme.lower()
    if scheme not in _DEFAULT_PORTS:
        raise ValueError(f"unsupported scheme in {raw!r}")

    authority, slash, tail = rest.partition("/")
    path_and_query = slash + tail if slash else "/"
    path, question, query = path_and_query.partition("?")

    host, colon, port_text = authority.partition(":")
    host = host.lower()
    if colon:
        try:
            port = int(port_text)
        except ValueError as exc:
            raise ValueError(f"bad port in {raw!r}") from exc
    else:
        port = _DEFAULT_PORTS[scheme]

    return Url(scheme, host, port, path or "/", query if question else "")


def origin_of(raw: str) -> str:
    """Shorthand: origin string of a raw URL."""
    return parse_url(raw).origin


def https(host: str, path: str = "/", query: str = "") -> Url:
    """Convenience constructor for the (overwhelmingly common) https case."""
    return Url("https", host, 443, path, query)
