"""Longitudinal monitoring of Topics API adoption.

Paper §6: "we provide a snapshot of Topics API usage in early 2024 ...
our measurements should be conducted continuously to monitor how the
technology evolves."  This package implements that follow-up: an adoption
model that evolves the ecosystem over calendar time
(:mod:`repro.longitudinal.evolution` — enrolments accumulate, services
ramp their A/B rates after activating), and a monitor that crawls monthly
snapshots and reports the trends (:mod:`repro.longitudinal.monitor`).
"""

from repro.longitudinal.evolution import AdoptionModel, world_at
from repro.longitudinal.monitor import (
    LongitudinalMonitor,
    SnapshotMetrics,
    render_trend,
)

__all__ = [
    "AdoptionModel",
    "LongitudinalMonitor",
    "SnapshotMetrics",
    "render_trend",
    "world_at",
]
