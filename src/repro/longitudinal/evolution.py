"""Time-evolving adoption: the ecosystem as it looked at a given date.

The base world encodes the *end state* (the paper's March-2024 snapshot
extended with its enrolment registry).  :func:`world_at` derives the world
as of an earlier or later date:

* only parties already enrolled by the date are in the allow-list;
* a service starts calling the API only after an activation lag past its
  enrolment, then ramps its A/B rate linearly to the configured value —
  the testing-phase behaviour the paper infers from Figure 3.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

from repro.attestation.registry import EnrollmentRegistry
from repro.util.timeline import Timestamp
from repro.web.generator import SyntheticWeb
from repro.web.thirdparty import ThirdParty, TopicsPolicy

_SECONDS_PER_MONTH = 30 * 24 * 3600


@dataclass(frozen=True)
class AdoptionModel:
    """How a service's Topics usage grows after enrolment."""

    #: Months between enrolment and the first production call.
    activation_lag_months: float = 2.0
    #: Months over which the A/B rate ramps from ~0 to its final value.
    ramp_months: float = 6.0

    def rate_factor(self, enrolled_at: Timestamp, now: Timestamp) -> float:
        """Multiplier (0..1) applied to a service's final enabled rate."""
        activation = enrolled_at + self.activation_lag_months * _SECONDS_PER_MONTH
        if now < activation:
            return 0.0
        ramp_span = self.ramp_months * _SECONDS_PER_MONTH
        if ramp_span <= 0:
            return 1.0
        progress = (now - activation) / ramp_span
        return min(1.0, max(0.0, progress))


def registry_at(registry: EnrollmentRegistry, now: Timestamp) -> EnrollmentRegistry:
    """The enrolment registry as of ``now`` (later enrolments dropped)."""
    return EnrollmentRegistry(
        [record for record in registry.all_enrollments() if record.enrolled_at <= now]
    )


def world_at(
    world: SyntheticWeb,
    now: Timestamp,
    model: AdoptionModel | None = None,
) -> SyntheticWeb:
    """Derive the world as it looked at ``now``.

    Page structure (sites, embeddings, banners) is held fixed — the paper
    measures adoption, not web churn — while enrolment and per-service
    calling behaviour follow the adoption model.
    """
    model = model if model is not None else AdoptionModel()
    registry = registry_at(world.registry, now)

    third_parties: dict[str, ThirdParty] = {}
    for domain, service in world.third_parties.items():
        record = world.registry.enrollment(domain)
        if service.policy is None or record is None:
            third_parties[domain] = service
            continue
        factor = model.rate_factor(record.enrolled_at, now)
        scaled = TopicsPolicy(
            enabled_rate=service.policy.enabled_rate * factor,
            before_rate=service.policy.before_rate * factor,
            ignores_consent_environment=service.policy.ignores_consent_environment,
            call_type_weights=service.policy.call_type_weights,
            alternating_period=service.policy.alternating_period,
            max_calls_per_page=service.policy.max_calls_per_page,
        )
        third_parties[domain] = dataclasses.replace(service, policy=scaled)

    return SyntheticWeb(
        config=world.config,
        websites=world.websites,
        shadow_sites=world.shadow_sites,
        third_parties=third_parties,
        registry=registry,
        entities=world.entities,
        cmps=world.cmps,
        tranco=world.tranco,
    )
