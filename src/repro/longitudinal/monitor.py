"""Monthly snapshot crawls and trend reporting.

One :class:`LongitudinalMonitor` run is the continuous version of the
paper's one-shot study: crawl the same ranking at a series of dates
against the evolving ecosystem, and track who is enrolled, who actively
calls, how much of the web a user encounters the API on, and how many
parties misbehave pre-consent.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.analysis.classify import build_table1
from repro.analysis.pervasiveness import legitimate_callers, share_of_sites_with_call
from repro.crawler.campaign import CrawlCampaign
from repro.longitudinal.evolution import AdoptionModel, world_at
from repro.util.timeline import Timestamp, date_of

if TYPE_CHECKING:
    from repro.web.generator import SyntheticWeb


@dataclass(frozen=True)
class SnapshotMetrics:
    """One month's headline numbers."""

    at: Timestamp
    allowed: int
    active_cps: int
    questionable_cps: int
    sites_with_call_share: float
    anomalous_cps: int

    @property
    def date_label(self) -> str:
        return date_of(self.at).isoformat()


class LongitudinalMonitor:
    """Crawls the same world at several dates and collects trends."""

    def __init__(
        self,
        world: "SyntheticWeb",
        model: AdoptionModel | None = None,
        limit: int | None = None,
    ) -> None:
        self._world = world
        self._model = model if model is not None else AdoptionModel()
        self._limit = limit

    def snapshot(self, at: Timestamp) -> SnapshotMetrics:
        """Run one dated snapshot study."""
        dated_world = world_at(self._world, at, self._model)
        crawl = CrawlCampaign(
            dated_world, corrupt_allowlist=True, limit=self._limit
        ).run()
        table = build_table1(
            crawl.d_ba, crawl.d_aa, crawl.allowed_domains, crawl.survey
        )
        legit = legitimate_callers(crawl.allowed_domains, crawl.survey)
        return SnapshotMetrics(
            at=at,
            allowed=table.allowed_total,
            active_cps=table.aa_allowed_attested,
            questionable_cps=table.ba_allowed_attested,
            sites_with_call_share=share_of_sites_with_call(crawl.d_aa, legit),
            anomalous_cps=table.aa_not_allowed,
        )

    def run(self, dates: list[Timestamp]) -> list[SnapshotMetrics]:
        """Snapshot every date, in order."""
        return [self.snapshot(at) for at in sorted(dates)]


def render_trend(snapshots: list[SnapshotMetrics]) -> str:
    """Text table of the adoption trend."""
    lines = [
        f"{'date':<12} {'allowed':>8} {'active':>7} {'quest.':>7}"
        f" {'sites w/ call':>14} {'anomalous':>10}",
    ]
    for snap in snapshots:
        lines.append(
            f"{snap.date_label:<12} {snap.allowed:>8} {snap.active_cps:>7}"
            f" {snap.questionable_cps:>7} {snap.sites_with_call_share:>13.1%}"
            f" {snap.anomalous_cps:>10}"
        )
    return "\n".join(lines)
