"""Page bodies for the report portal.

One ``render_*_page`` function per portal page.  Each takes the loaded
:class:`~repro.validate.artifacts.CrawlArtifacts` bundle (plus
pre-computed payloads where that avoids recomputation) and returns the
page's ``<main>`` body HTML.  Every optional artefact renders an
explicit "not captured" note when absent — a bare archive produces a
complete, honest site, never a crash.
"""

from __future__ import annotations

import hashlib

from repro.analysis.obs_report import (
    build_metrics_report,
    render_trace_health,
)
from repro.obs.profile import build_profile
from repro.report.bench import history_series, metric_of, rate_of
from repro.report.html import (
    data_table,
    detail_table,
    kv_table,
    legend,
    note,
    section,
    stat_tiles,
)
from repro.report.svg import fmt_num, hbar_chart, line_chart, paired_hbar_chart
from repro.validate.artifacts import CrawlArtifacts
from repro.validate.engine import STATUS_SKIPPED, AuditReport

#: Conventional archive contents listed in the overview inventory.
_INVENTORY = (
    ("d_ba.jsonl", "Before-Accept dataset"),
    ("d_aa.jsonl", "After-Accept dataset"),
    ("attestation_survey.jsonl", "attestation survey"),
    ("allowed_domains.txt", "enrolled-caller allow-list"),
    ("report.json", "campaign report"),
    ("trace.jsonl", "event trace (optional)"),
    ("metrics.json", "metrics snapshot (optional)"),
    ("spans.jsonl", "span profile (optional)"),
    ("partial.json", "partial-crawl manifest (optional)"),
    ("metamorphic.json", "metamorphic verdicts (optional)"),
    ("checkpoints/MANIFEST.json", "checkpoint manifest (optional)"),
)


def _pct(value: float) -> str:
    return f"{100.0 * value:.1f}%"


def _seconds(value: float) -> str:
    return f"{value:,.2f}s"


# ---------------------------------------------------------------- overview


def render_overview_page(artifacts: CrawlArtifacts) -> str:
    report = artifacts.result.report
    parts = []

    parts.append(
        section(
            "Campaign at a glance",
            stat_tiles(
                [
                    ("targets", fmt_num(report.targets), "crawl list size"),
                    ("visited ok", fmt_num(report.ok), "successful visits"),
                    ("failed", fmt_num(report.failed), "unreachable targets"),
                    (
                        "banner accept rate",
                        _pct(report.accept_rate),
                        f"{fmt_num(report.accepted)} of {fmt_num(report.ok)} ok visits",
                    ),
                    (
                        "duration",
                        f"{fmt_num(report.duration_seconds)}s",
                        "simulated wall clock",
                    ),
                ]
            ),
        )
    )

    crawl_pairs = [
        ("started at", f"{report.started_at:,}s"),
        ("finished at", f"{report.finished_at:,}s"),
        ("banners seen", fmt_num(report.banners_seen)),
        ("retried visits", fmt_num(report.retried)),
        ("recovered retries", fmt_num(report.recovered)),
    ]
    body = kv_table(crawl_pairs)
    if report.failure_kinds:
        body += data_table(
            ("failure kind", "count"),
            sorted(report.failure_kinds.items(), key=lambda kv: (-kv[1], kv[0])),
            numeric=(1,),
            caption="Failure breakdown",
        )
    parts.append(section("Crawl report", body))

    manifest = artifacts.manifest
    if manifest and manifest.get("fingerprint"):
        fingerprint = manifest["fingerprint"]
        pairs = [(key, fingerprint[key]) for key in sorted(fingerprint)]
        shards = manifest.get("shards") or {}
        if shards:
            pairs.append(("checkpointed shards", len(shards)))
        parts.append(
            section(
                "Campaign fingerprint",
                kv_table(pairs),
                "Resume identity from the checkpoint manifest: two campaigns may "
                "share checkpoints only when every field matches.",
            )
        )
    else:
        parts.append(
            section(
                "Campaign fingerprint",
                note(
                    "not captured (no checkpoint directory in the archive; "
                    "re-run with --checkpoint-dir to record the campaign "
                    "fingerprint)"
                ),
            )
        )

    shard_count = None
    if artifacts.metrics is not None:
        shards = {
            labels
            for labels, _ in artifacts.metrics.gauge_series("shard_visits").items()
        }
        shard_count = len(shards) or None
    if shard_count is None and manifest:
        shard_count = (manifest.get("fingerprint") or {}).get("shard_count")
    backend_pairs = [
        ("shards", shard_count if shard_count is not None else "unknown"),
        (
            "allow-list domains",
            fmt_num(len(artifacts.result.allowed_domains)),
        ),
        ("survey entries", fmt_num(len(artifacts.result.survey))),
    ]
    parts.append(section("Execution shape", kv_table(backend_pairs)))

    rows = []
    for name, description in _INVENTORY:
        path = artifacts.directory / name
        if path.exists():
            payload = path.read_bytes()
            digest = hashlib.sha256(payload).hexdigest()[:16]
            rows.append((name, description, fmt_num(len(payload)), digest))
        else:
            rows.append((name, description, "—", "absent"))
    parts.append(
        section(
            "Artefact inventory",
            data_table(
                ("file", "role", "bytes", "sha256 (16)"),
                rows,
                numeric=(2,),
            ),
            "Every artefact the portal was built from, with content digests "
            "so two archives can be compared at a glance.",
        )
    )
    return "".join(parts)


# ----------------------------------------------------------------- figures


def render_figures_page(figures: dict) -> str:
    parts = []
    stats = figures["stats"]
    parts.append(
        section(
            "Dataset summary (§2.4)",
            stat_tiles(
                [
                    ("first parties", fmt_num(stats["first_parties"]), ""),
                    (
                        "third parties (BA)",
                        fmt_num(stats["unique_third_parties_ba"]),
                        "Before-Accept",
                    ),
                    (
                        "third parties (AA)",
                        fmt_num(stats["unique_third_parties_aa"]),
                        "After-Accept",
                    ),
                    ("banner rate", _pct(stats["banner_rate"]), "of ok visits"),
                    ("accept rate", _pct(stats["accept_rate"]), "of ok visits"),
                ]
            ),
        )
    )

    table1 = figures["table1"]
    body = data_table(
        ("section", "measure", "count"),
        [(row["section"], row["label"], fmt_num(row["count"])) for row in table1["rows"]],
        numeric=(2,),
    )
    flagged = table1["aa_not_allowed_attested_callers"]
    if flagged:
        body += note(
            "Attested-but-not-enrolled callers observed After-Accept: "
            + ", ".join(flagged)
        )
    parts.append(
        section(
            "Table 1 — observed Topics API usage",
            body,
            "Caller counts split by enrolment and attestation status, "
            "Before-Accept vs After-Accept.",
        )
    )

    fig2 = figures["figure2"]
    chart = legend([("s1", "present on sites"), ("s2", "calls the API")])
    chart += paired_hbar_chart(
        [(row["caller"], row["present_on"], row["called_on"]) for row in fig2],
        "Figure 2 — presence vs Topics calls per enrolled caller",
        ("present on sites", "calls the API"),
    )
    chart += detail_table(
        "Figure 2 data",
        data_table(
            ("caller", "present on", "calls on", "call share"),
            [
                (
                    row["caller"],
                    fmt_num(row["present_on"]),
                    fmt_num(row["called_on"]),
                    _pct(row["call_share"]),
                )
                for row in fig2
            ],
            numeric=(1, 2, 3),
        ),
    )
    chart += note(
        "Share of sites with at least one Topics call: "
        + _pct(figures["call_share_of_sites"])
    )
    parts.append(
        section(
            "Figure 2 — pervasiveness",
            chart,
            "Top enrolled callers After-Accept: where they are embedded vs "
            "where they actually call document.browsingTopics().",
        )
    )

    fig3 = figures["figure3"]
    parts.append(
        section(
            "Figure 3 — call-when-present rate",
            hbar_chart(
                [(row["caller"], row["enabled_percent"]) for row in fig3],
                "Figure 3 — share of embedding sites where the caller invokes "
                "the API",
                unit="%",
            )
            + detail_table(
                "Figure 3 data",
                data_table(
                    ("caller", "present on", "calls on", "enabled %"),
                    [
                        (
                            row["caller"],
                            fmt_num(row["present_on"]),
                            fmt_num(row["called_on"]),
                            f"{row['enabled_percent']:.1f}%",
                        )
                        for row in fig3
                    ],
                    numeric=(1, 2, 3),
                ),
            ),
        )
    )

    fig5 = figures["figure5"]
    parts.append(
        section(
            "Figure 5 — questionable calls before consent",
            hbar_chart(
                [(row["caller"], row["websites"]) for row in fig5],
                "Figure 5 — websites with a Before-Accept Topics call per caller",
                unit="sites",
            ),
            "Callers invoking the API before any consent interaction.",
        )
    )

    fig6 = figures["figure6"]
    if fig6:
        region_names = list(fig6[0]["regions"])
        headers = ["caller"]
        for region in region_names:
            headers += [f"{region} present", f"{region} calls", f"{region} enabled"]
        rows = []
        for row in fig6:
            cells = [row["caller"]]
            for region in region_names:
                entry = row["regions"][region]
                cells += [
                    fmt_num(entry["present"]),
                    fmt_num(entry["called"]),
                    f"{entry['enabled_percent']:.1f}%",
                ]
            rows.append(cells)
        parts.append(
            section(
                "Figure 6 — questionable calls by region",
                data_table(
                    headers, rows, numeric=tuple(range(1, len(headers)))
                ),
                "Per-TLD-region presence, Before-Accept calls, and "
                "call-when-present rate.",
            )
        )
    else:
        parts.append(
            section(
                "Figure 6 — questionable calls by region",
                note("no questionable callers observed in this campaign"),
            )
        )

    fig7 = figures["figure7"]
    chart = legend(
        [("s1", "P(CMP)"), ("s2", "P(CMP | questionable call)")]
    )
    chart += paired_hbar_chart(
        [
            (
                row["name"],
                100.0 * row["p_cmp"],
                100.0 * row["p_cmp_given_questionable"],
            )
            for row in fig7["rows"]
        ],
        "Figure 7 — CMP prevalence overall vs on sites with questionable calls",
        ("P(CMP) %", "P(CMP | questionable) %"),
    )
    chart += detail_table(
        "Figure 7 data",
        data_table(
            (
                "CMP",
                "sites",
                "questionable sites",
                "P(CMP)",
                "P(CMP | questionable)",
                "P(questionable | CMP)",
                "lift",
            ),
            [
                (
                    row["name"],
                    fmt_num(row["sites_total"]),
                    fmt_num(row["sites_questionable"]),
                    _pct(row["p_cmp"]),
                    _pct(row["p_cmp_given_questionable"]),
                    _pct(row["p_questionable_given_cmp"]),
                    f"{row['lift']:.2f}×",
                )
                for row in fig7["rows"]
            ],
            numeric=(1, 2, 3, 4, 5, 6),
        ),
    )
    chart += note(
        "Average questionable-call rate across sites: "
        + _pct(fig7["average_questionable_rate"])
    )
    parts.append(
        section(
            "Figure 7 — CMPs and questionable calls",
            chart,
            "Does running a consent-management platform correlate with "
            "pre-consent Topics calls?",
        )
    )

    anomalous = figures["anomalous"]
    body = stat_tiles(
        [
            ("anomalous calls", fmt_num(anomalous["total_calls"]), ""),
            ("distinct callers", fmt_num(anomalous["distinct_callers"]), ""),
            ("affected sites", fmt_num(anomalous["affected_sites"]), ""),
            (
                "via JavaScript",
                _pct(anomalous["javascript_fraction"]),
                "of anomalous calls",
            ),
            (
                "GTM present",
                _pct(anomalous["gtm_site_fraction"]),
                "of affected sites",
            ),
        ]
    )
    body += data_table(
        ("attribution", "count"),
        sorted(
            anomalous["attribution_counts"].items(), key=lambda kv: (-kv[1], kv[0])
        ),
        numeric=(1,),
        caption="Attributed owners of not-enrolled callers (§4)",
    )
    parts.append(section("Anomalous usage (§4)", body))

    enrollment = figures["enrollment"]
    monthly = list(enrollment["monthly_counts"].items())
    body = kv_table(
        [
            ("first enrolment", enrollment["first_date"] or "—"),
            ("last enrolment", enrollment["last_date"] or "—"),
            ("total enrolled", fmt_num(enrollment["total"])),
            ("mean per month", f"{enrollment['mean_per_month']:.1f}"),
        ]
    )
    if monthly:
        body += line_chart(
            [("s1", "enrolments", monthly)],
            "Enrolment timeline — attested callers per month",
            unit="callers",
        )
    parts.append(
        section(
            "Enrolment timeline (§3)",
            body,
            "Attestation-survey enrolment dates bucketed by month.",
        )
    )
    return "".join(parts)


# ----------------------------------------------------------------- profile


def render_profile_page(artifacts: CrawlArtifacts) -> str:
    spans = artifacts.spans
    if not spans:
        return section(
            "Campaign profile",
            note(
                "not captured (no spans were recorded; re-run with --span-out "
                "to export the span profile into the archive)"
            ),
        )
    profile = build_profile(spans)
    parts = []

    meta = artifacts.span_meta
    tiles = [
        ("spans", fmt_num(profile.span_count), ""),
        ("wall clock", f"{profile.wall_seconds:,.0f}s", "simulated"),
        ("stages", fmt_num(len(profile.stages)), ""),
    ]
    parts.append(section("Profile summary", stat_tiles(tiles)))
    if meta is not None and meta.dropped:
        parts.append(
            section(
                "Span buffer",
                note(
                    f"span buffer dropped {meta.dropped:,} of {meta.recorded:,} "
                    f"spans (capacity {meta.capacity:,}); the profile "
                    "under-counts early stages."
                ),
            )
        )

    if profile.stages:
        chart = hbar_chart(
            [(stat.name, round(stat.total, 2)) for stat in profile.stages],
            "Stage breakdown — total simulated seconds per stage",
            unit="s",
        )
        chart += detail_table(
            "Stage latency quantiles",
            data_table(
                ("stage", "count", "total", "mean", "p50", "p95", "p99"),
                [
                    (
                        stat.name,
                        fmt_num(stat.count),
                        _seconds(stat.total),
                        _seconds(stat.mean),
                        _seconds(stat.p50),
                        _seconds(stat.p95),
                        _seconds(stat.p99),
                    )
                    for stat in profile.stages
                ],
                numeric=(1, 2, 3, 4, 5, 6),
            ),
        )
        parts.append(
            section(
                "Stage breakdown",
                chart,
                "Where the campaign's simulated time went, by pipeline stage.",
            )
        )

    if profile.critical_path:
        rows = []
        for depth, span in enumerate(profile.critical_path):
            label = str(span.fields.get("domain", span.fields.get("shard", "")))
            name = (" " * depth) + span.name + (f" [{label}]" if label else "")
            rows.append(
                (
                    name,
                    f"{span.start:,.1f}s",
                    f"{span.end:,.1f}s",
                    _seconds(span.duration),
                )
            )
        parts.append(
            section(
                "Critical path",
                data_table(
                    ("span", "start", "end", "duration"),
                    rows,
                    numeric=(1, 2, 3),
                ),
                "The chain of spans that finished last — the lower bound on "
                "campaign wall-clock.",
            )
        )

    straggler = profile.straggler
    if straggler is not None:
        flags = {
            f"shard {straggler.straggler.shard}": "◀ straggler",
        }
        chart = hbar_chart(
            [
                (f"shard {timing.shard}", round(timing.finished_at, 2))
                for timing in straggler.shards
            ],
            "Shard finish times — the straggler bounds the campaign",
            unit="s",
            flags=flags,
        )
        chart += detail_table(
            "Per-shard timings",
            data_table(
                ("shard", "visits", "finished at", "mean visit", "retries"),
                [
                    (
                        timing.shard,
                        fmt_num(timing.visits),
                        f"{timing.finished_at:,.0f}s",
                        _seconds(timing.mean_visit),
                        fmt_num(timing.retries),
                    )
                    for timing in straggler.shards
                ],
                numeric=(1, 2, 3, 4),
            ),
        )
        severity = (
            f" (+{straggler.severity:.0%} vs other shards)"
            if straggler.severity > 0
            else ""
        )
        chart += note(
            f"shard {straggler.straggler.shard} bounds the campaign's "
            f"finish time; cause: {straggler.reason}{severity}"
        )
        parts.append(section("Shard stragglers", chart))

    if profile.slow.visits:
        parts.append(
            section(
                f"Slowest visits (top {len(profile.slow.visits)} of "
                f"{profile.slow.considered:,})",
                data_table(
                    ("domain", "phase", "shard", "duration", "dominant stage"),
                    [
                        (
                            visit.domain,
                            visit.phase or "?",
                            visit.shard if visit.shard is not None else "—",
                            _seconds(visit.duration),
                            (
                                f"{visit.dominant_stage} "
                                f"({_seconds(visit.dominant_seconds)})"
                                if visit.dominant_stage
                                else "—"
                            ),
                        )
                        for visit in profile.slow.visits
                    ],
                    numeric=(2, 3),
                ),
            )
        )
    return "".join(parts)


# ------------------------------------------------------------------ health


def render_health_page(artifacts: CrawlArtifacts) -> str:
    parts = []

    if artifacts.trace_events is None:
        parts.append(
            section(
                "Event trace",
                note(
                    "not captured (no event trace was exported; re-run with "
                    "--trace-out to record one into the archive)"
                ),
            )
        )
    else:
        body = note(render_trace_health(artifacts.trace_meta))
        kinds: dict[str, int] = {}
        for event in artifacts.trace_events:
            kinds[event.kind] = kinds.get(event.kind, 0) + 1
        if kinds:
            body += hbar_chart(
                sorted(kinds.items(), key=lambda kv: (-kv[1], kv[0])),
                "Trace events by kind",
                unit="events",
            )
        parts.append(section("Event trace", body))

    snapshot = artifacts.metrics
    if snapshot is None or (
        not snapshot.counters and not snapshot.gauges and not snapshot.histograms
    ):
        parts.append(
            section(
                "Metrics",
                note(
                    "not captured (no metrics snapshot was exported; re-run "
                    "with --metrics-out to record one into the archive)"
                ),
            )
        )
        return "".join(parts)

    report = build_metrics_report(snapshot)
    tiles = [
        ("visits", fmt_num(report.visits_total), f"{report.visits_per_second:.2f}/s"),
        (
            "topics calls",
            fmt_num(report.topics_calls_total),
            f"{report.calls_per_second:.2f}/s",
        ),
        ("duration", f"{report.duration_seconds:,.0f}s", "simulated"),
    ]
    if report.visit_mean is not None:
        tiles.append(
            (
                "visit latency",
                f"{report.visit_p50:.2f}s",
                f"p50 — p95 {report.visit_p95:.2f}s, p99 {report.visit_p99:.2f}s",
            )
        )
    parts.append(section("Metrics snapshot", stat_tiles(tiles)))

    if report.failures_by_kind:
        parts.append(
            section(
                "Failures by kind",
                hbar_chart(
                    sorted(
                        report.failures_by_kind.items(),
                        key=lambda kv: (-kv[1], kv[0]),
                    ),
                    "Crawl failures by kind",
                    unit="visits",
                    series="s2",
                ),
            )
        )

    breakdown_rows = []
    for result, count in sorted(report.banners_by_result.items()):
        breakdown_rows.append(("banner", result, fmt_num(count)))
    for result, count in sorted(report.probes_by_result.items()):
        breakdown_rows.append(("attestation probe", result, fmt_num(count)))
    if breakdown_rows:
        parts.append(
            section(
                "Interaction outcomes",
                data_table(
                    ("counter", "result", "count"), breakdown_rows, numeric=(2,)
                ),
            )
        )

    if report.shard_visits:
        rows = [
            (
                f"shard {shard}",
                fmt_num(int(report.shard_visits[shard])),
                f"{report.shard_durations.get(shard, 0.0):,.0f}s",
            )
            for shard in sorted(report.shard_visits)
        ]
        body = data_table(("shard", "ok visits", "duration"), rows, numeric=(1, 2))
        skew = report.shard_skew
        if skew is not None:
            body += note(f"shard skew: {skew:.1%} (max−min over mean ok visits)")
        parts.append(section("Per-shard load", body))

    crawl = artifacts.result.report
    banners = report.banners_by_result
    checks = [
        (
            # Every accepted site is revisited After-Accept, so ok
            # browser visits exceed ok sites by exactly the accept count.
            "ok browser visits vs report ok + accepted revisits",
            int(snapshot.counter_value("browser_visits_total", outcome="ok")),
            crawl.ok + crawl.accepted,
        ),
        (
            "failed browser visits vs report failed",
            int(snapshot.counter_value("browser_visits_total", outcome="failed")),
            crawl.failed,
        ),
        (
            "crawl_failures_total vs report failed",
            int(snapshot.counter_total("crawl_failures_total")),
            crawl.failed,
        ),
        (
            "banners accepted+missed vs report banners seen",
            int(banners.get("accepted", 0)) + int(banners.get("missed", 0)),
            crawl.banners_seen,
        ),
        (
            "banners accepted vs report accepted",
            int(banners.get("accepted", 0)),
            crawl.accepted,
        ),
    ]
    rows = [
        (
            name,
            fmt_num(metric_value),
            fmt_num(archive_value),
            "ok" if metric_value == archive_value else "MISMATCH",
        )
        for name, metric_value, archive_value in checks
    ]
    mismatches = sum(1 for _, m, a in checks if m != a)
    body = data_table(
        ("cross-check", "metric", "archive", "verdict"), rows, numeric=(1, 2)
    )
    if mismatches:
        body += note(
            f"{mismatches} counter cross-check(s) disagree with the archived "
            "report — the snapshot and archive came from different runs, or a "
            "merge dropped events."
        )
    else:
        body += note(
            "every counter cross-check agrees with the archived report."
        )
    parts.append(
        section(
            "Counter cross-checks",
            body,
            "Counters measure schedule-invariant protocol work, so they must "
            "agree with the archived campaign report exactly.",
        )
    )
    return "".join(parts)


# -------------------------------------------------------------- validation


def render_validation_page(artifacts: CrawlArtifacts, audit: AuditReport) -> str:
    parts = []
    verdict = "PASS" if audit.ok else "FAIL"
    parts.append(
        section(
            "Audit verdict",
            stat_tiles(
                [
                    ("verdict", verdict, "errors fail, warnings do not"),
                    ("rules checked", fmt_num(len(audit.checked())), ""),
                    ("rules skipped", fmt_num(len(audit.skipped())), "missing artefacts"),
                    ("errors", fmt_num(len(audit.errors)), ""),
                    ("warnings", fmt_num(len(audit.warnings)), ""),
                ]
            ),
            f"{len(audit.outcomes)}-rule artefact audit over "
            f"{', '.join(sorted(audit.artifacts_available))}.",
        )
    )

    rows = []
    for outcome in audit.outcomes:
        if outcome.status == STATUS_SKIPPED:
            detail = "missing: " + ", ".join(outcome.missing)
        elif outcome.violations:
            detail = "; ".join(v.message for v in outcome.violations[:3])
            hidden = len(outcome.violations) - 3
            if hidden > 0:
                detail += f" … and {hidden} more"
        else:
            detail = "—"
        rows.append(
            (
                outcome.rule,
                outcome.severity.value,
                outcome.status,
                detail,
            )
        )
    parts.append(
        section(
            "Rule outcomes",
            data_table(("rule", "severity", "status", "detail"), rows),
        )
    )

    metamorphic = artifacts.metamorphic
    if metamorphic is None:
        parts.append(
            section(
                "Metamorphic relations",
                note(
                    "not captured (no metamorphic.json in the archive; run "
                    "repro metamorphic --json-out to record "
                    "crawl-equivalence verdicts)"
                ),
            )
        )
    else:
        verdict = "PASS" if metamorphic.get("ok") else "FAIL"
        body = stat_tiles(
            [
                ("verdict", verdict, ""),
                ("sites", fmt_num(metamorphic.get("sites", 0)), "harness world"),
                ("seed", str(metamorphic.get("seed", "—")), ""),
                (
                    "relations",
                    fmt_num(len(metamorphic.get("relations", []))),
                    "",
                ),
            ]
        )
        rows = [
            (
                relation.get("relation", "?"),
                "pass" if relation.get("passed") else "FAIL",
                relation.get("description", ""),
                (
                    "; ".join(relation.get("details", [])[:2])
                    if relation.get("details")
                    else "—"
                ),
            )
            for relation in metamorphic.get("relations", [])
        ]
        if rows:
            body += data_table(
                ("relation", "verdict", "description", "details"), rows
            )
        parts.append(
            section(
                "Metamorphic relations",
                body,
                "Crawl-equivalence relations recorded by the metamorphic "
                "harness for this campaign's world.",
            )
        )
    return "".join(parts)


# ------------------------------------------------------------------- bench


def render_bench_page(history: list[dict]) -> str:
    if not history:
        return section(
            "Bench trajectory",
            note(
                "not captured (no benchmarks/history.jsonl found; the bench "
                "gate appends one record per run — pass --history to point "
                "the portal at one)"
            ),
        )
    series = history_series(history)
    parts = []

    slots = ("s1", "s2", "s3")
    chart_series = []
    for i, (name, records) in enumerate(series.items()):
        if i >= len(slots):
            break
        points = [
            (str(j + 1), rate_of(record)) for j, record in enumerate(records)
        ]
        metrics = {metric_of(record) for record in records}
        label = name if len(metrics) != 1 else f"{name} ({metrics.pop()})"
        chart_series.append((slots[i], label, points))
    body = ""
    if len(chart_series) > 1:
        body += legend(
            [(slot, name) for slot, name, _ in chart_series]
        )
    body += line_chart(
        chart_series,
        "Bench trajectory — throughput by run",
        unit="per sec",
    )
    if len(series) > len(slots):
        body += note(
            f"showing the first {len(slots)} of {len(series)} benchmarks; "
            "the full history is in the table below."
        )
    parts.append(
        section(
            "Throughput trajectory",
            body,
            "throughput per gated bench run (crawl visits/sec and "
            "re-identification users/sec), in run order (append order of "
            "history.jsonl).",
        )
    )

    rows = []
    for name, records in series.items():
        for j, record in enumerate(records):
            rows.append(
                (
                    name,
                    j + 1,
                    metric_of(record),
                    f"{rate_of(record):,.1f}",
                    (
                        f"{float(record['baseline']):,.1f}"
                        if record.get("baseline") is not None
                        else "—"
                    ),
                    str(record.get("commit", "—"))[:12],
                )
            )
    parts.append(
        section(
            "Recorded runs",
            data_table(
                ("benchmark", "run", "metric", "rate", "baseline", "commit"),
                rows,
                numeric=(1, 3, 4),
            ),
        )
    )
    return "".join(parts)
