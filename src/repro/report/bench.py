"""Bench-trajectory data for the portal.

``scripts/check_bench_regression.py`` appends one JSON record per gated
run to ``benchmarks/history.jsonl``; this module parses that file into
per-benchmark series the bench page can chart.  Records are kept in file
order (append order == run order), so the page needs no timestamps to
sequence them — which also keeps the rendering deterministic for a given
history file.
"""

from __future__ import annotations

import json
from pathlib import Path


def load_history(path: str | Path | None) -> list[dict]:
    """Parse a ``history.jsonl`` file into its records, file order kept.

    Returns ``[]`` when the path is ``None``, missing, or empty.  Lines
    that are blank are skipped; a malformed line raises (corruption, not
    absence).
    """
    if path is None:
        return []
    path = Path(path)
    if not path.exists() or path.stat().st_size == 0:
        return []
    records = []
    for line in path.read_text(encoding="utf-8").splitlines():
        line = line.strip()
        if not line:
            continue
        records.append(json.loads(line))
    return records


def history_series(records: list[dict]) -> dict[str, list[dict]]:
    """Group history records per benchmark name, run order preserved."""
    series: dict[str, list[dict]] = {}
    for record in records:
        name = str(record.get("benchmark", "unknown"))
        series.setdefault(name, []).append(record)
    return dict(sorted(series.items()))
