"""Bench-trajectory data for the portal.

``scripts/check_bench_regression.py`` appends one JSON record per gated
run to ``benchmarks/history.jsonl``; this module parses that file into
per-benchmark series the bench page can chart.  Records are kept in file
order (append order == run order), so the page needs no timestamps to
sequence them — which also keeps the rendering deterministic for a given
history file.
"""

from __future__ import annotations

import json
from pathlib import Path


def load_history(path: str | Path | None) -> list[dict]:
    """Parse a ``history.jsonl`` file into its records, file order kept.

    Returns ``[]`` when the path is ``None``, missing, or empty.  Lines
    that are blank are skipped; a malformed line raises (corruption, not
    absence).
    """
    if path is None:
        return []
    path = Path(path)
    if not path.exists() or path.stat().st_size == 0:
        return []
    records = []
    for line in path.read_text(encoding="utf-8").splitlines():
        line = line.strip()
        if not line:
            continue
        records.append(json.loads(line))
    return records


#: Throughput keys a history record may carry, in probe order.  Older
#: records predate the ``metric`` field and only carry the crawl key.
METRIC_KEYS = ("visits_per_second", "reid_users_per_second")


def metric_of(record: dict) -> str:
    """The throughput metric a history record carries.

    New records name it in their ``metric`` field; for older ones the
    known keys are probed, defaulting to the crawl plane's visits/sec.
    """
    metric = record.get("metric")
    if metric:
        return str(metric)
    for key in METRIC_KEYS:
        if key in record:
            return key
    return "visits_per_second"


def rate_of(record: dict) -> float:
    """A history record's throughput figure (0.0 when absent)."""
    value = record.get(metric_of(record))
    return float(value) if value is not None else 0.0


def history_series(records: list[dict]) -> dict[str, list[dict]]:
    """Group history records per benchmark name, run order preserved."""
    series: dict[str, list[dict]] = {}
    for record in records:
        name = str(record.get("benchmark", "unknown"))
        series.setdefault(name, []).append(record)
    return dict(sorted(series.items()))
