"""Self-contained static HTML report portal for campaign archives.

``repro report <archive>`` renders one archive — plus whatever optional
trace/metrics/span/checkpoint/validation artefacts it carries — into a
deterministic multi-page site: overview, paper figures, profiler views,
trace/metrics health, validation verdicts, and the bench trajectory.
Stdlib only, inline CSS and SVG, zero network fetches.
"""

from repro.report.bench import history_series, load_history
from repro.report.html import NAV_PAGES, page
from repro.report.site import (
    DEFAULT_SITE_DIR,
    ReportSite,
    build_site,
    generate_report,
    resolve_history,
)
from repro.report.svg import hbar_chart, line_chart, paired_hbar_chart

__all__ = [
    "DEFAULT_SITE_DIR",
    "NAV_PAGES",
    "ReportSite",
    "build_site",
    "generate_report",
    "hbar_chart",
    "history_series",
    "line_chart",
    "load_history",
    "page",
    "paired_hbar_chart",
    "resolve_history",
]
