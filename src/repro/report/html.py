"""Stdlib HTML building blocks for the report portal.

No template engine, no external assets: pages are assembled from these
helpers into self-contained documents whose only non-HTML payload is the
inline stylesheet below and the inline SVG charts from
:mod:`repro.report.svg`.  Every helper escapes its text inputs, and
nothing here depends on wall-clock, locale, or dict iteration order —
the byte-determinism of the whole site rests on that.
"""

from __future__ import annotations

import html as _html
from typing import Iterable, Sequence

#: Portal pages in navigation order: (filename, nav label).
NAV_PAGES: tuple[tuple[str, str], ...] = (
    ("index.html", "Overview"),
    ("figures.html", "Figures"),
    ("profile.html", "Profiler"),
    ("health.html", "Trace & metrics"),
    ("validation.html", "Validation"),
    ("bench.html", "Bench trajectory"),
)

#: The inline stylesheet: light theme with a selected dark theme (same
#: hues re-stepped for the dark surface), text tokens for all labels,
#: hairline chrome.  Palette follows the validated reference instance.
STYLESHEET = """
:root {
  color-scheme: light dark;
  --page: #f9f9f7;
  --surface: #fcfcfb;
  --ink-1: #0b0b0b;
  --ink-2: #52514e;
  --muted: #898781;
  --grid: #e1e0d9;
  --baseline: #c3c2b7;
  --border: rgba(11, 11, 11, 0.10);
  --series-1: #2a78d6;
  --series-2: #eb6834;
  --series-3: #1baf7a;
  --status-good: #0ca30c;
  --status-warning: #fab219;
  --status-critical: #d03b3b;
}
@media (prefers-color-scheme: dark) {
  :root {
    --page: #0d0d0d;
    --surface: #1a1a19;
    --ink-1: #ffffff;
    --ink-2: #c3c2b7;
    --muted: #898781;
    --grid: #2c2c2a;
    --baseline: #383835;
    --border: rgba(255, 255, 255, 0.10);
    --series-1: #3987e5;
    --series-2: #d95926;
    --series-3: #199e70;
  }
}
* { box-sizing: border-box; }
body {
  margin: 0;
  background: var(--page);
  color: var(--ink-1);
  font: 15px/1.5 system-ui, -apple-system, "Segoe UI", sans-serif;
}
header.site {
  padding: 20px 28px 0;
  max-width: 1080px;
  margin: 0 auto;
}
header.site h1 { font-size: 20px; margin: 0 0 2px; }
header.site p.sub { margin: 0; color: var(--ink-2); font-size: 13px; }
nav.site {
  max-width: 1080px;
  margin: 12px auto 0;
  padding: 0 28px;
  display: flex;
  gap: 4px;
  flex-wrap: wrap;
  border-bottom: 1px solid var(--grid);
}
nav.site a {
  padding: 6px 12px 8px;
  color: var(--ink-2);
  text-decoration: none;
  font-size: 14px;
  border-bottom: 2px solid transparent;
}
nav.site a:hover { color: var(--ink-1); }
nav.site a.active {
  color: var(--ink-1);
  font-weight: 600;
  border-bottom-color: var(--series-1);
}
main {
  max-width: 1080px;
  margin: 0 auto;
  padding: 20px 28px 48px;
}
section.card {
  background: var(--surface);
  border: 1px solid var(--border);
  border-radius: 8px;
  padding: 18px 20px;
  margin: 0 0 18px;
}
section.card h2 { font-size: 16px; margin: 0 0 4px; }
section.card p.desc { margin: 0 0 12px; color: var(--ink-2); font-size: 13px; }
p.note {
  margin: 0;
  padding: 10px 12px;
  border-left: 3px solid var(--baseline);
  color: var(--ink-2);
  background: var(--page);
  border-radius: 0 6px 6px 0;
  font-size: 14px;
}
div.tiles { display: flex; flex-wrap: wrap; gap: 12px; margin: 0 0 6px; }
div.tile {
  flex: 1 1 150px;
  min-width: 150px;
  background: var(--page);
  border: 1px solid var(--border);
  border-radius: 8px;
  padding: 12px 14px;
}
div.tile .label { font-size: 12px; color: var(--ink-2); }
div.tile .value { font-size: 26px; font-weight: 600; margin: 2px 0 0; }
div.tile .detail { font-size: 12px; color: var(--muted); margin: 2px 0 0; }
table.data {
  border-collapse: collapse;
  width: 100%;
  font-size: 13.5px;
  margin: 4px 0;
}
table.data caption {
  text-align: left;
  color: var(--ink-2);
  font-size: 13px;
  padding: 0 0 6px;
}
table.data th, table.data td {
  text-align: left;
  padding: 5px 10px 5px 0;
  border-bottom: 1px solid var(--grid);
  vertical-align: top;
}
table.data th { color: var(--ink-2); font-weight: 600; font-size: 12.5px; }
table.data td.num, table.data th.num {
  text-align: right;
  font-variant-numeric: tabular-nums;
}
table.kv { border-collapse: collapse; font-size: 14px; }
table.kv th {
  text-align: left;
  color: var(--ink-2);
  font-weight: 400;
  padding: 3px 18px 3px 0;
  white-space: nowrap;
}
table.kv td { padding: 3px 0; font-variant-numeric: tabular-nums; }
div.legend {
  display: flex;
  gap: 16px;
  flex-wrap: wrap;
  margin: 0 0 8px;
  font-size: 12.5px;
  color: var(--ink-2);
}
div.legend span.key { display: inline-flex; align-items: center; gap: 6px; }
div.legend i {
  width: 10px;
  height: 10px;
  border-radius: 2px;
  display: inline-block;
}
div.legend i.s1 { background: var(--series-1); }
div.legend i.s2 { background: var(--series-2); }
div.legend i.s3 { background: var(--series-3); }
span.ok { color: var(--status-good); font-weight: 600; }
span.warn { color: var(--ink-1); font-weight: 600; }
span.fail { color: var(--status-critical); font-weight: 600; }
details.tbl { margin: 8px 0 0; }
details.tbl summary { color: var(--ink-2); font-size: 13px; cursor: pointer; }
svg.chart { display: block; max-width: 100%; height: auto; }
svg.chart .bar-s1 { fill: var(--series-1); }
svg.chart .bar-s2 { fill: var(--series-2); }
svg.chart .bar-s3 { fill: var(--series-3); }
svg.chart .line-s1 { stroke: var(--series-1); }
svg.chart .line-s2 { stroke: var(--series-2); }
svg.chart .line-s3 { stroke: var(--series-3); }
svg.chart .dot-s1 { fill: var(--series-1); stroke: var(--surface); stroke-width: 2; }
svg.chart .dot-s2 { fill: var(--series-2); stroke: var(--surface); stroke-width: 2; }
svg.chart .dot-s3 { fill: var(--series-3); stroke: var(--surface); stroke-width: 2; }
svg.chart text { font: 12px system-ui, -apple-system, "Segoe UI", sans-serif; }
svg.chart text.cat { fill: var(--ink-2); }
svg.chart text.val { fill: var(--ink-2); font-variant-numeric: tabular-nums; }
svg.chart text.tick { fill: var(--muted); font-size: 11px; }
svg.chart text.flag { fill: var(--ink-1); font-weight: 600; }
svg.chart line.grid { stroke: var(--grid); stroke-width: 1; }
svg.chart line.axis { stroke: var(--baseline); stroke-width: 1; }
footer.site {
  max-width: 1080px;
  margin: 0 auto;
  padding: 0 28px 28px;
  color: var(--muted);
  font-size: 12px;
}
"""


def esc(text: object) -> str:
    """HTML-escape any value's string form."""
    return _html.escape(str(text), quote=True)


def note(text: str) -> str:
    """An explicit "not captured" (or similar) callout block."""
    return f'<p class="note">{esc(text)}</p>'


def section(title: str, body: str, desc: str = "") -> str:
    """One titled card on a page."""
    lead = f'<p class="desc">{esc(desc)}</p>' if desc else ""
    return f'<section class="card"><h2>{esc(title)}</h2>{lead}{body}</section>'


def kv_table(pairs: Iterable[tuple[str, object]]) -> str:
    """A two-column key/value table (already-escaped values NOT expected)."""
    rows = "".join(
        f"<tr><th>{esc(key)}</th><td>{esc(value)}</td></tr>"
        for key, value in pairs
    )
    return f'<table class="kv">{rows}</table>'


def data_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    numeric: Sequence[int] = (),
    caption: str = "",
) -> str:
    """A data table; ``numeric`` names right-aligned column indices."""
    numeric_set = set(numeric)

    def cell(tag: str, index: int, value: object) -> str:
        klass = ' class="num"' if index in numeric_set else ""
        return f"<{tag}{klass}>{esc(value)}</{tag}>"

    head = "".join(cell("th", i, h) for i, h in enumerate(headers))
    body = "".join(
        "<tr>" + "".join(cell("td", i, v) for i, v in enumerate(row)) + "</tr>"
        for row in rows
    )
    cap = f"<caption>{esc(caption)}</caption>" if caption else ""
    return (
        f'<table class="data">{cap}<thead><tr>{head}</tr></thead>'
        f"<tbody>{body}</tbody></table>"
    )


def detail_table(summary: str, table: str) -> str:
    """A collapsed table view riding along a chart (accessibility path)."""
    return f'<details class="tbl"><summary>{esc(summary)}</summary>{table}</details>'


def stat_tiles(tiles: Iterable[tuple[str, str, str]]) -> str:
    """A row of stat tiles: (label, value, detail) triples."""
    blocks = "".join(
        f'<div class="tile"><div class="label">{esc(label)}</div>'
        f'<div class="value">{esc(value)}</div>'
        + (f'<div class="detail">{esc(detail)}</div>' if detail else "")
        + "</div>"
        for label, value, detail in tiles
    )
    return f'<div class="tiles">{blocks}</div>'


def legend(entries: Iterable[tuple[str, str]]) -> str:
    """A chart legend: (series css slot, label) pairs, e.g. ("s1", "present")."""
    keys = "".join(
        f'<span class="key"><i class="{esc(slot)}"></i>{esc(label)}</span>'
        for slot, label in entries
    )
    return f'<div class="legend">{keys}</div>'


def page(title: str, active: str, body: str, subtitle: str = "") -> str:
    """A full portal page with shared chrome; ``active`` is the filename."""
    nav = "".join(
        f'<a href="{esc(filename)}"'
        + (' class="active"' if filename == active else "")
        + f">{esc(label)}</a>"
        for filename, label in NAV_PAGES
    )
    sub = f'<p class="sub">{esc(subtitle)}</p>' if subtitle else ""
    return (
        "<!DOCTYPE html>\n"
        '<html lang="en">\n<head>\n<meta charset="utf-8">\n'
        '<meta name="viewport" content="width=device-width, initial-scale=1">\n'
        f"<title>{esc(title)}</title>\n"
        f"<style>{STYLESHEET}</style>\n"
        "</head>\n<body>\n"
        f'<header class="site"><h1>{esc(title)}</h1>{sub}</header>\n'
        f'<nav class="site">{nav}</nav>\n'
        f"<main>\n{body}\n</main>\n"
        '<footer class="site">Generated offline by <code>repro report</code> — '
        "self-contained, no external assets.</footer>\n"
        "</body>\n</html>\n"
    )
