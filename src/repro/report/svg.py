"""Deterministic inline-SVG chart primitives.

Three forms cover every portal page: a horizontal bar chart (magnitude
per category), a paired horizontal bar chart (two measures per
category), and a categorical line chart (trajectories).  All geometry is
computed with fixed-precision formatting so the same inputs always
produce the same bytes; colors are never emitted inline — marks carry
CSS classes resolved by the portal stylesheet, which is what makes the
charts follow the light/dark theme for free.

Mark conventions (shared with the stylesheet in
:mod:`repro.report.html`): bars are thin (≤16px) with a 4px rounded
data-end, lines are 2px with ≥8px markers ringed in surface color, grid
and axes are hairlines, and every mark embeds a ``<title>`` so browsers
show a native tooltip.  Text always wears ink tokens, never series
color.
"""

from __future__ import annotations

import math
from typing import Sequence

from repro.report.html import esc

#: Maximum characters of a category label before deterministic ellipsis.
_LABEL_MAX = 34


def fmt_coord(value: float) -> str:
    """A coordinate with at most 2 decimals and no trailing zeros."""
    text = f"{value:.2f}".rstrip("0").rstrip(".")
    return "0" if text == "-0" else text


def fmt_num(value: float) -> str:
    """A human-readable value label: grouped ints, trimmed 2-dp floats."""
    if isinstance(value, bool):  # bools are ints; never wanted here
        value = int(value)
    if float(value) == int(value) and abs(value) < 1e15:
        return f"{int(value):,}"
    return f"{value:,.2f}"


def _truncate(label: str) -> str:
    if len(label) <= _LABEL_MAX:
        return label
    return label[: _LABEL_MAX - 1] + "…"


def _ticks(max_value: float, count: int = 4) -> list[float]:
    """Nice round tick values from 0 up to (at least near) ``max_value``."""
    if max_value <= 0:
        return [0.0, 1.0]
    raw_step = max_value / count
    magnitude = 10.0 ** math.floor(math.log10(raw_step))
    for factor in (1.0, 2.0, 2.5, 5.0, 10.0):
        step = factor * magnitude
        if step >= raw_step:
            break
    ticks = [round(i * step, 10) for i in range(count + 1)]
    while ticks and ticks[-1] > max_value and ticks[-2] >= max_value:
        ticks.pop()
    return ticks


def _label_gutter(labels: Sequence[str]) -> float:
    longest = max((len(_truncate(label)) for label in labels), default=0)
    return min(250.0, max(90.0, 7.2 * longest + 14.0))


def _rounded_bar(x: float, y: float, w: float, h: float, klass: str) -> str:
    """A bar square at the baseline with a 4px-rounded data end."""
    r = min(4.0, w / 2.0, h / 2.0)
    x_end = x + w
    d = (
        f"M{fmt_coord(x)} {fmt_coord(y)}"
        f"H{fmt_coord(x_end - r)}"
        f"Q{fmt_coord(x_end)} {fmt_coord(y)} {fmt_coord(x_end)} {fmt_coord(y + r)}"
        f"V{fmt_coord(y + h - r)}"
        f"Q{fmt_coord(x_end)} {fmt_coord(y + h)} "
        f"{fmt_coord(x_end - r)} {fmt_coord(y + h)}"
        f"H{fmt_coord(x)}Z"
    )
    return f'<path class="{klass}" d="{d}"/>'


def _svg_open(width: float, height: float, title: str) -> str:
    return (
        f'<svg class="chart" role="img" aria-label="{esc(title)}" '
        f'viewBox="0 0 {fmt_coord(width)} {fmt_coord(height)}" '
        f'width="{fmt_coord(width)}" height="{fmt_coord(height)}" '
        'xmlns="http://www.w3.org/2000/svg">'
    )


def _grid(
    ticks: Sequence[float],
    scale: float,
    x0: float,
    top: float,
    bottom: float,
    fmt=fmt_num,
) -> str:
    """Vertical hairline gridlines with tick labels underneath."""
    parts = []
    for tick in ticks:
        x = x0 + tick * scale
        parts.append(
            f'<line class="grid" x1="{fmt_coord(x)}" y1="{fmt_coord(top)}" '
            f'x2="{fmt_coord(x)}" y2="{fmt_coord(bottom)}"/>'
        )
        parts.append(
            f'<text class="tick" x="{fmt_coord(x)}" '
            f'y="{fmt_coord(bottom + 14)}" text-anchor="middle">'
            f"{esc(fmt(tick))}</text>"
        )
    return "".join(parts)


def hbar_chart(
    rows: Sequence[tuple[str, float]],
    title: str,
    unit: str = "",
    series: str = "s1",
    width: float = 720.0,
    flags: dict[str, str] | None = None,
) -> str:
    """Horizontal bars, one per category, direct value label at the tip.

    ``flags`` maps a category label to a short annotation rendered in
    ink after the value (e.g. ``{"shard 3": "▲ straggler"}``) —
    status is never carried by color alone.
    """
    if not rows:
        return empty_chart(title)
    flags = flags or {}
    bar_h, pitch, pad_top, pad_bottom = 16.0, 26.0, 8.0, 24.0
    gutter = _label_gutter([label for label, _ in rows])
    value_gutter = 110.0
    plot_w = width - gutter - value_gutter
    height = pad_top + pitch * len(rows) + pad_bottom
    max_value = max(value for _, value in rows)
    ticks = _ticks(max_value)
    scale = plot_w / ticks[-1] if ticks[-1] else 0.0

    parts = [_svg_open(width, height, title)]
    parts.append(_grid(ticks, scale, gutter, pad_top, height - pad_bottom))
    for i, (label, value) in enumerate(rows):
        y = pad_top + i * pitch + (pitch - bar_h) / 2.0
        bar_w = max(value * scale, 0.0)
        shown = _truncate(label)
        tip = f"{label}: {fmt_num(value)}{(' ' + unit) if unit else ''}"
        flag = flags.get(label, "")
        value_text = fmt_num(value) + (f" {flag}" if flag else "")
        value_class = "flag" if flag else "val"
        parts.append(
            "<g>"
            f"<title>{esc(tip)}</title>"
            f'<text class="cat" x="{fmt_coord(gutter - 8)}" '
            f'y="{fmt_coord(y + bar_h - 4)}" text-anchor="end">{esc(shown)}</text>'
            + _rounded_bar(gutter, y, bar_w, bar_h, f"bar-{series}")
            + f'<text class="{value_class}" x="{fmt_coord(gutter + bar_w + 6)}" '
            f'y="{fmt_coord(y + bar_h - 4)}">{esc(value_text)}</text>'
            "</g>"
        )
    parts.append(
        f'<line class="axis" x1="{fmt_coord(gutter)}" y1="{fmt_coord(pad_top)}" '
        f'x2="{fmt_coord(gutter)}" y2="{fmt_coord(height - pad_bottom)}"/>'
    )
    parts.append("</svg>")
    return "".join(parts)


def paired_hbar_chart(
    rows: Sequence[tuple[str, float, float]],
    title: str,
    series_names: tuple[str, str],
    width: float = 720.0,
) -> str:
    """Two bars per category (series 1 and 2), 2px surface gap between.

    The caller renders the matching legend with
    :func:`repro.report.html.legend` — identity is never color-alone.
    """
    if not rows:
        return empty_chart(title)
    bar_h, gap, pad_top, pad_bottom = 10.0, 2.0, 8.0, 24.0
    pitch = 2 * bar_h + gap + 10.0
    gutter = _label_gutter([label for label, _, _ in rows])
    value_gutter = 110.0
    plot_w = width - gutter - value_gutter
    height = pad_top + pitch * len(rows) + pad_bottom
    max_value = max(max(a, b) for _, a, b in rows)
    ticks = _ticks(max_value)
    scale = plot_w / ticks[-1] if ticks[-1] else 0.0

    parts = [_svg_open(width, height, title)]
    parts.append(_grid(ticks, scale, gutter, pad_top, height - pad_bottom))
    for i, (label, first, second) in enumerate(rows):
        y = pad_top + i * pitch + (pitch - 2 * bar_h - gap) / 2.0
        shown = _truncate(label)
        tip = (
            f"{label} — {series_names[0]}: {fmt_num(first)}, "
            f"{series_names[1]}: {fmt_num(second)}"
        )
        parts.append(
            "<g>"
            f"<title>{esc(tip)}</title>"
            f'<text class="cat" x="{fmt_coord(gutter - 8)}" '
            f'y="{fmt_coord(y + bar_h + gap / 2.0 + 4)}" text-anchor="end">'
            f"{esc(shown)}</text>"
            + _rounded_bar(gutter, y, max(first * scale, 0.0), bar_h, "bar-s1")
            + f'<text class="val" x="{fmt_coord(gutter + first * scale + 6)}" '
            f'y="{fmt_coord(y + bar_h - 1)}">{esc(fmt_num(first))}</text>'
            + _rounded_bar(
                gutter, y + bar_h + gap, max(second * scale, 0.0), bar_h, "bar-s2"
            )
            + f'<text class="val" x="{fmt_coord(gutter + second * scale + 6)}" '
            f'y="{fmt_coord(y + 2 * bar_h + gap - 1)}">{esc(fmt_num(second))}</text>'
            "</g>"
        )
    parts.append(
        f'<line class="axis" x1="{fmt_coord(gutter)}" y1="{fmt_coord(pad_top)}" '
        f'x2="{fmt_coord(gutter)}" y2="{fmt_coord(height - pad_bottom)}"/>'
    )
    parts.append("</svg>")
    return "".join(parts)


def line_chart(
    series: Sequence[tuple[str, str, Sequence[tuple[str, float]]]],
    title: str,
    width: float = 720.0,
    height: float = 240.0,
    unit: str = "",
) -> str:
    """Categorical line chart: ``series`` is (slot, name, [(x label, y)]).

    ``slot`` is a stylesheet series class ("s1", "s2", "s3").  All
    series share the x categories of the longest one, positions taken by
    index.  The last point of each series gets a direct value label;
    with ≥2 series the caller adds an HTML legend.
    """
    series = [entry for entry in series if entry[2]]
    if not series:
        return empty_chart(title)
    pad_left, pad_right, pad_top, pad_bottom = 58.0, 70.0, 12.0, 30.0
    plot_w = width - pad_left - pad_right
    plot_h = height - pad_top - pad_bottom
    x_labels = max((list(points) for _, _, points in series), key=len)
    x_labels = [label for label, _ in x_labels]
    n = max(len(x_labels), 2)
    step_x = plot_w / (n - 1)
    max_value = max(y for _, _, points in series for _, y in points)
    ticks = _ticks(max_value)
    top_tick = ticks[-1] or 1.0

    def x_at(index: int) -> float:
        return pad_left + index * step_x

    def y_at(value: float) -> float:
        return pad_top + plot_h * (1.0 - value / top_tick)

    parts = [_svg_open(width, height, title)]
    for tick in ticks:
        y = y_at(tick)
        parts.append(
            f'<line class="grid" x1="{fmt_coord(pad_left)}" y1="{fmt_coord(y)}" '
            f'x2="{fmt_coord(width - pad_right)}" y2="{fmt_coord(y)}"/>'
        )
        parts.append(
            f'<text class="tick" x="{fmt_coord(pad_left - 8)}" '
            f'y="{fmt_coord(y + 4)}" text-anchor="end">{esc(fmt_num(tick))}</text>'
        )
    label_step = max(1, math.ceil(len(x_labels) / 8))
    for i, label in enumerate(x_labels):
        if i % label_step and i != len(x_labels) - 1:
            continue
        parts.append(
            f'<text class="tick" x="{fmt_coord(x_at(i))}" '
            f'y="{fmt_coord(height - pad_bottom + 16)}" text-anchor="middle">'
            f"{esc(label)}</text>"
        )
    parts.append(
        f'<line class="axis" x1="{fmt_coord(pad_left)}" '
        f'y1="{fmt_coord(height - pad_bottom)}" '
        f'x2="{fmt_coord(width - pad_right)}" '
        f'y2="{fmt_coord(height - pad_bottom)}"/>'
    )
    for slot, name, points in series:
        coords = [(x_at(i), y_at(y)) for i, (_, y) in enumerate(points)]
        path = " ".join(
            f"{fmt_coord(x)},{fmt_coord(y)}" for x, y in coords
        )
        parts.append(
            f'<polyline class="line-{esc(slot)}" fill="none" '
            f'stroke-width="2" points="{path}"/>'
        )
        for (x, y), (x_label, value) in zip(coords, points):
            tip = f"{name} — {x_label}: {fmt_num(value)}{(' ' + unit) if unit else ''}"
            parts.append(
                f'<circle class="dot-{esc(slot)}" cx="{fmt_coord(x)}" '
                f'cy="{fmt_coord(y)}" r="4"><title>{esc(tip)}</title></circle>'
            )
        end_x, end_y = coords[-1]
        parts.append(
            f'<text class="val" x="{fmt_coord(end_x + 8)}" '
            f'y="{fmt_coord(end_y + 4)}">{esc(fmt_num(points[-1][1]))}</text>'
        )
    parts.append("</svg>")
    return "".join(parts)


def empty_chart(title: str) -> str:
    """A placeholder emitted when a chart has no rows to draw."""
    return (
        f'<svg class="chart" role="img" aria-label="{esc(title)}" '
        'viewBox="0 0 720 60" width="720" height="60" '
        'xmlns="http://www.w3.org/2000/svg">'
        '<text class="tick" x="8" y="34">no data</text></svg>'
    )
