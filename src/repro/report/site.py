"""Assembling and writing the portal.

:func:`build_site` turns a loaded artefact bundle into the full page
set in memory; :func:`write_site` persists it atomically;
:func:`generate_report` is the one-call path the CLI uses (archive
directory in, output directory out).  Generation is byte-deterministic:
the same archive and history always produce the same site, which is
what lets the test suite assert serial and process-parallel campaigns
render identical portals.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

from repro.analysis.figure_data import campaign_figures
from repro.report.bench import load_history
from repro.report.html import page
from repro.report.sections import (
    render_bench_page,
    render_figures_page,
    render_health_page,
    render_overview_page,
    render_profile_page,
    render_validation_page,
)
from repro.util.fsio import atomic_write_text
from repro.validate.artifacts import CrawlArtifacts
from repro.validate.engine import audit_artifacts

#: Default portal directory name inside an archive.
DEFAULT_SITE_DIR = "report"

#: Repo-level bench history consulted when the archive has none.
DEFAULT_HISTORY = Path("benchmarks") / "history.jsonl"


@dataclass
class ReportSite:
    """A fully rendered portal: filename → page bytes (as text)."""

    title: str
    pages: dict[str, str] = field(default_factory=dict)

    def write(self, directory: str | Path) -> Path:
        """Write every page atomically; returns the output directory."""
        out = Path(directory)
        out.mkdir(parents=True, exist_ok=True)
        for filename in sorted(self.pages):
            atomic_write_text(out / filename, self.pages[filename])
        return out


def resolve_history(
    archive: str | Path, history: str | Path | None = None
) -> Path | None:
    """Pick the bench history feeding the portal.

    Explicit path wins; else ``<archive>/history.jsonl``; else the
    repo-level ``benchmarks/history.jsonl`` relative to the working
    directory; else ``None`` (the page renders a not-captured note).
    """
    if history is not None:
        return Path(history)
    in_archive = Path(archive) / "history.jsonl"
    if in_archive.exists():
        return in_archive
    if DEFAULT_HISTORY.exists():
        return DEFAULT_HISTORY
    return None


def build_site(
    artifacts: CrawlArtifacts, history: list[dict] | None = None
) -> ReportSite:
    """Render every portal page from one loaded artefact bundle."""
    title = f"Campaign report — {artifacts.directory.name}"
    subtitle = (
        "Topics API crawl-campaign observability portal: figures, profile, "
        "health, and validation from the archive's own artefacts."
    )
    figures = campaign_figures(artifacts.result)
    audit = audit_artifacts(artifacts)
    bodies = {
        "index.html": render_overview_page(artifacts),
        "figures.html": render_figures_page(figures),
        "profile.html": render_profile_page(artifacts),
        "health.html": render_health_page(artifacts),
        "validation.html": render_validation_page(artifacts, audit),
        "bench.html": render_bench_page(history or []),
    }
    pages = {
        filename: page(title, filename, body, subtitle)
        for filename, body in bodies.items()
    }
    return ReportSite(title=title, pages=pages)


def generate_report(
    archive: str | Path,
    out: str | Path | None = None,
    history: str | Path | None = None,
) -> Path:
    """Archive directory in, written portal out; returns the site dir."""
    archive = Path(archive)
    artifacts = CrawlArtifacts.load(archive)
    history_path = resolve_history(archive, history)
    site = build_site(artifacts, load_history(history_path))
    destination = Path(out) if out is not None else archive / DEFAULT_SITE_DIR
    return site.write(destination)
