"""Unit tests for consent banners and the page/DOM model."""

import pytest

from repro.util.urls import https
from repro.web.banner import (
    ConsentBanner,
    SUPPORTED_ACCEPT_KEYWORDS,
    all_languages,
    languages_with_odd_phrases,
    odd_phrase,
    standard_phrase,
)
from repro.web.page import (
    IFrameTag,
    PageModel,
    ResourceTag,
    ScriptKind,
    ScriptTag,
)


class TestBannerLanguages:
    def test_five_supported_languages(self):
        # Priv-Accept supports exactly five (paper footnote 5).
        assert set(SUPPORTED_ACCEPT_KEYWORDS) == {"en", "fr", "es", "de", "it"}

    def test_standard_phrases_for_every_language(self):
        for language in all_languages():
            assert standard_phrase(language, 0)

    def test_variant_indexing_wraps(self):
        assert standard_phrase("en", 0) == standard_phrase("en", 1000)

    def test_odd_phrases_only_for_supported(self):
        assert set(languages_with_odd_phrases()) == set(SUPPORTED_ACCEPT_KEYWORDS)

    def test_unknown_language_raises(self):
        with pytest.raises(ValueError):
            standard_phrase("xx", 0)
        with pytest.raises(ValueError):
            odd_phrase("ru", 0)

    def test_language_supported_property(self):
        banner = ConsentBanner("de", "Zustimmen", None, True)
        assert banner.language_supported
        assert not ConsentBanner("ja", "同意します", None, True).language_supported


class TestPageModel:
    def _page(self) -> PageModel:
        page = PageModel(url=https("www.site.com"))
        page.scripts.append(ScriptTag(src=https("static.ads.net", "/tag.js")))
        page.iframes.append(IFrameTag(src=https("frame.ads.net", "/f.html")))
        page.resources.append(ResourceTag(src=https("www.site.com", "/logo.png")))
        return page

    def test_third_party_hosts_excludes_page_host(self):
        hosts = self._page().third_party_hosts()
        assert hosts == {"static.ads.net", "frame.ads.net"}

    def test_render_html_contains_tags(self):
        page = self._page()
        page.banner = ConsentBanner("en", "Accept all", "OneTrust", True)
        html = page.render_html()
        assert "https://static.ads.net/tag.js" in html
        assert "<iframe" in html
        assert "Accept all" in html

    def test_browsingtopics_attribute_rendered(self):
        page = PageModel(url=https("www.site.com"))
        page.iframes.append(
            IFrameTag(src=https("ads.net", "/f"), browsingtopics_attr=True)
        )
        assert "browsingtopics" in page.render_html()

    def test_script_kinds(self):
        assert ScriptKind.TAG_MANAGER.value == "tag-manager"
        tag = ScriptTag(src=https("x.com", "/s.js"), kind=ScriptKind.AD_TAG)
        assert not tag.rogue_topics_call
        assert tag.rogue_call_count == 1
