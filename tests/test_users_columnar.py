"""The population data plane: columnar trace buffers and sharded runs.

Pins the two contracts the plane rests on: ``TraceBuffers`` is a faithful
CSR encoding of the nested views the per-user loop produced, and
``TraceGenerator.run_many`` is byte-identical to that loop for every
backend and shard count.
"""

import pickle

import pytest
from hypothesis import given, settings, strategies as st

from repro.users.browsing import TraceGenerator
from repro.users.columnar import TraceBuffers, TraceView
from repro.users.population import (
    Population,
    PopulationReconstructionError,
    PopulationSpec,
    population_fingerprint,
    worker_population,
)

CALLERS = ("adtech.example", "cdn.example")
EPOCHS = 5
QUERY_EPOCHS = (2, 3, 4)


@pytest.fixture(scope="module")
def population():
    return Population.generate(30, seed=11)


@pytest.fixture(scope="module")
def generator(population):
    return TraceGenerator(
        population,
        callers=list(CALLERS),
        visits_per_epoch=12,
        noise_probability=0.05,
    )


@pytest.fixture(scope="module")
def reference(generator, population):
    """The legacy per-user path: run() + observed_topics, nested lists."""
    views = {caller: [] for caller in CALLERS}
    for user_id in range(len(population)):
        session = generator.run(user_id, EPOCHS)
        for caller in CALLERS:
            views[caller].append(
                generator.observed_topics(session, caller, list(QUERY_EPOCHS))
            )
    return views


@pytest.fixture(scope="module")
def buffers(generator):
    return generator.run_many(EPOCHS, QUERY_EPOCHS, backend="serial")


class TestTraceBuffers:
    def test_requires_callers_and_epochs(self):
        with pytest.raises(ValueError):
            TraceBuffers((), QUERY_EPOCHS)
        with pytest.raises(ValueError):
            TraceBuffers(CALLERS, ())

    def test_append_views_round_trips(self):
        buffers = TraceBuffers(CALLERS, (0, 1))
        buffers.append_views(7, [[(1, 2), (3,)], [(), (4, 5, 6)]])
        assert len(buffers) == 1
        assert buffers.cell(0, 0, 0) == (1, 2)
        assert buffers.cell(0, 0, 1) == (3,)
        assert buffers.cell(0, 1, 0) == ()
        assert buffers.cell(0, 1, 1) == (4, 5, 6)
        assert buffers.view(0, "cdn.example") == [(), (4, 5, 6)]
        assert buffers.view(0, "adtech.example").user_id == 7
        buffers.check()

    def test_append_views_rejects_wrong_shapes(self):
        buffers = TraceBuffers(CALLERS, (0, 1))
        with pytest.raises(ValueError, match="caller"):
            buffers.append_views(0, [[(1,), (2,)]])
        fresh = TraceBuffers(CALLERS, (0, 1))
        with pytest.raises(ValueError, match="epoch cell"):
            fresh.append_views(0, [[(1,)], [(2,)]])

    def test_extend_rebases_offsets(self):
        left = TraceBuffers(CALLERS, (0,))
        left.append_views(0, [[(1, 2)], [(3,)]])
        right = TraceBuffers(CALLERS, (0,))
        right.append_views(1, [[(4,)], [(5, 6)]])
        left.extend(right)
        left.check()
        assert len(left) == 2
        assert list(left.user_ids) == [0, 1]
        assert left.cell(1, 0, 0) == (4,)
        assert left.cell(1, 1, 0) == (5, 6)

    def test_extend_rejects_schema_mismatch(self):
        base = TraceBuffers(CALLERS, (0,))
        with pytest.raises(ValueError, match="caller mismatch"):
            base.extend(TraceBuffers(("other.example",), (0,)))
        with pytest.raises(ValueError, match="query-epoch"):
            base.extend(TraceBuffers(CALLERS, (1,)))

    def test_check_rejects_torn_rows(self):
        buffers = TraceBuffers(CALLERS, (0,))
        buffers.begin_user(0)
        buffers.append_cell((1,))
        # second caller's cell missing
        with pytest.raises(ValueError, match="offset column"):
            buffers.check()

    def test_pickle_round_trip(self, buffers):
        clone = pickle.loads(pickle.dumps(buffers))
        clone.check()
        assert clone.callers == buffers.callers
        assert clone.query_epochs == buffers.query_epochs
        assert clone.user_ids == buffers.user_ids
        assert clone.topics == buffers.topics
        assert clone.offsets == buffers.offsets

    def test_trace_view_is_a_sequence(self, buffers):
        view = buffers.view(0, CALLERS[0])
        assert isinstance(view, TraceView)
        assert len(view) == len(QUERY_EPOCHS)
        assert view[0] == buffers.cell(0, 0, 0)
        assert view[-1] == view[len(view) - 1]
        assert view[1:] == list(view)[1:]
        assert list(view) == buffers.materialise(0, CALLERS[0])
        with pytest.raises(IndexError):
            view[len(view)]

    def test_unknown_caller_raises(self, buffers):
        with pytest.raises(KeyError, match="unknown caller"):
            buffers.view(0, "stranger.example")


class TestRunManyEquivalence:
    def test_matches_legacy_per_user_loop(self, buffers, reference, population):
        for caller in CALLERS:
            for user_id in range(len(population)):
                assert buffers.view(user_id, caller) == reference[caller][user_id]

    @pytest.mark.parametrize("backend", ["serial", "thread", "process"])
    def test_backends_byte_identical(self, generator, buffers, backend):
        result = generator.run_many(
            EPOCHS, QUERY_EPOCHS, backend=backend, max_workers=2, shard_count=3
        )
        assert result.__getstate__() == buffers.__getstate__()

    @given(shard_count=st.integers(min_value=1, max_value=12))
    @settings(max_examples=12, deadline=None)
    def test_any_shard_count_byte_identical(
        self, generator, buffers, shard_count
    ):
        result = generator.run_many(
            EPOCHS, QUERY_EPOCHS, backend="serial", shard_count=shard_count
        )
        assert result.__getstate__() == buffers.__getstate__()

    def test_user_subset_preserves_per_user_determinism(
        self, generator, buffers
    ):
        subset = generator.run_many(
            EPOCHS, QUERY_EPOCHS, user_ids=[4, 9, 17], backend="serial"
        )
        for row, user_id in enumerate([4, 9, 17]):
            for caller in CALLERS:
                assert subset.view(row, caller) == buffers.view(user_id, caller)


class TestPopulationSpec:
    def test_generate_stamps_a_spec(self, population):
        spec = population.spec
        assert isinstance(spec, PopulationSpec)
        assert spec.fingerprint == population_fingerprint(population)

    def test_rebuild_round_trips(self, population):
        rebuilt = population.spec.rebuild()
        assert population_fingerprint(rebuilt) == population.spec.fingerprint

    def test_worker_population_caches_by_fingerprint(self, population):
        first = worker_population(population.spec)
        assert worker_population(population.spec) is first

    def test_fingerprint_mismatch_raises(self, population):
        bad = PopulationSpec(
            size=len(population),
            seed=population.seed,
            sites_per_topic=3,
            interests_min=3,
            interests_max=8,
            fingerprint="0" * 16,
        )
        with pytest.raises(PopulationReconstructionError):
            bad.rebuild()

    def test_custom_taxonomy_has_no_spec(self, population):
        custom = Population.generate(5, seed=2, taxonomy=population.taxonomy)
        assert custom.spec is None
