"""Tests for the cookie substrate and the cookies-vs-topics comparison."""

import pytest

from repro.analysis.cookies_vs_topics import compare_tracking, render_comparison
from repro.browser.cookies import TRACKING_COOKIE, CookieJar, CookieTracker


class TestCookieJar:
    def test_first_party_set_and_get(self):
        jar = CookieJar()
        assert jar.set_cookie("www.site.com", "site.com", "sid", "1", now=0)
        cookie = jar.get_cookie("www.site.com", "site.com", "sid")
        assert cookie is not None and cookie.value == "1"
        assert not cookie.third_party

    def test_third_party_flagged(self):
        jar = CookieJar()
        jar.set_cookie("ads.tracker.net", "site.com", "uid", "x", now=0)
        cookie = jar.get_cookie("ads.tracker.net", "other.com", "uid")
        assert cookie is not None and cookie.third_party

    def test_phaseout_blocks_third_party_set(self):
        jar = CookieJar(third_party_cookies_enabled=False)
        assert not jar.set_cookie("ads.tracker.net", "site.com", "uid", "x", now=0)
        assert len(jar) == 0

    def test_phaseout_allows_first_party(self):
        jar = CookieJar(third_party_cookies_enabled=False)
        assert jar.set_cookie("www.site.com", "site.com", "sid", "1", now=0)

    def test_phaseout_hides_existing_cross_site(self):
        jar = CookieJar()
        jar.set_cookie("ads.tracker.net", "tracker.net", "uid", "x", now=0)
        jar.third_party_cookies_enabled = False
        # Same-site access still works; cross-site is blocked.
        assert jar.get_cookie("ads.tracker.net", "tracker.net", "uid") is not None
        assert jar.get_cookie("ads.tracker.net", "news.com", "uid") is None

    def test_domain_scoping(self):
        jar = CookieJar()
        jar.set_cookie("a.tracker.net", "site.com", "uid", "x", now=0)
        assert jar.get_cookie("b.tracker.net", "site.com", "uid") is not None
        assert jar.get_cookie("other.org", "site.com", "uid") is None

    def test_cookies_for_and_clear(self):
        jar = CookieJar()
        jar.set_cookie("a.net", "s.com", "x", "1", now=0)
        jar.set_cookie("a.net", "s.com", "y", "2", now=0)
        assert len(jar.cookies_for("sub.a.net")) == 2
        jar.clear()
        assert len(jar) == 0


class TestCookieTracker:
    def test_identifier_persists_across_sites(self):
        tracker = CookieTracker(CookieJar(), profile_seed=1)
        first = tracker.track_impression("ads.cp.com", "news.com", now=0)
        second = tracker.track_impression("ads.cp.com", "shop.com", now=1)
        assert first == second  # the cross-site tracking loop

    def test_identifier_deterministic_per_profile(self):
        a = CookieTracker(CookieJar(), profile_seed=1)
        b = CookieTracker(CookieJar(), profile_seed=1)
        assert a.track_impression("ads.cp.com", "x.com", 0) == b.track_impression(
            "ads.cp.com", "x.com", 0
        )

    def test_profiles_differ(self):
        a = CookieTracker(CookieJar(), profile_seed=1)
        b = CookieTracker(CookieJar(), profile_seed=2)
        assert a.track_impression("ads.cp.com", "x.com", 0) != b.track_impression(
            "ads.cp.com", "x.com", 0
        )

    def test_phaseout_denies_identifier(self):
        tracker = CookieTracker(
            CookieJar(third_party_cookies_enabled=False), profile_seed=1
        )
        assert tracker.track_impression("ads.cp.com", "news.com", 0) is None
        assert tracker.impressions == [("cp.com", "news.com", False)]

    def test_first_party_identifier_survives_phaseout(self):
        tracker = CookieTracker(
            CookieJar(third_party_cookies_enabled=False), profile_seed=1
        )
        tracker.track_impression("ads.cp.com", "cp.com", 0)
        assert tracker.track_impression("ads.cp.com", "cp.com", 1) is not None

    def test_cookie_name(self):
        jar = CookieJar()
        CookieTracker(jar, 1).track_impression("ads.cp.com", "x.com", 0)
        assert jar.get_cookie("ads.cp.com", "x.com", TRACKING_COOKIE)


class TestComparison:
    @pytest.fixture(scope="class")
    def rows(self, world):
        return compare_tracking(world, site_limit=2_500)

    def test_phaseout_destroys_cross_site_ids(self, rows):
        for row in rows[:10]:
            assert row.cookie_id_rate_3pc_on > 0.95
            assert row.cookie_id_rate_3pc_off < 0.05
            assert row.phaseout_loss > 0.9

    def test_topics_partially_substitutes(self, rows):
        criteo = next(r for r in rows if r.caller == "criteo.com")
        assert 0.6 <= criteo.topics_call_rate <= 0.9  # its 75% A/B share
        bing = next((r for r in rows if r.caller == "bing.com"), None)
        if bing is not None:
            assert bing.topics_call_rate == 0.0  # enrolled but silent

    def test_min_impressions_filter(self, world):
        rows = compare_tracking(world, site_limit=1_000, min_impressions=100)
        assert all(row.impressions >= 100 for row in rows)

    def test_render(self, rows):
        text = render_comparison(rows, top=5)
        assert "3PC on" in text and "topics" in text
