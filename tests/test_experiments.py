"""Tests for the experiment runner and paper-comparison machinery."""

import pytest

from repro.experiments.config import ExperimentConfig
from repro.experiments.paper import PAPER, PaperValue, compare, render_comparisons
from repro.experiments.runner import run_full_study
from repro.web.config import WorldConfig


class TestPaperValues:
    def test_every_key_unique_and_self_keyed(self):
        for key, value in PAPER.items():
            assert value.key == key

    def test_exact_values_match(self):
        assert PAPER["table1.allowed"].value == 193
        assert PAPER["crawl.ok"].value == 43_405
        assert PAPER["anomalous.calls"].value == 3_450
        assert PAPER["fig5.top_caller_sites"].value == 611

    def test_matches_within_tolerance(self):
        value = PaperValue("k", "d", 100.0, tolerance=0.10)
        assert value.matches(105.0)
        assert not value.matches(89.0)

    def test_zero_expected(self):
        value = PaperValue("k", "d", 0.0)
        assert value.matches(0.0)
        assert not value.matches(1.0)

    def test_deviation_signs(self):
        value = PaperValue("k", "d", 100.0)
        assert value.deviation(110.0) == pytest.approx(0.10)
        assert value.deviation(90.0) == pytest.approx(-0.10)

    def test_compare_unknown_key(self):
        with pytest.raises(KeyError):
            compare("not.a.key", 1.0)


class TestStudyResult:
    def test_comparisons_cover_all_areas(self, study):
        keys = {c.key for c in study.comparisons()}
        assert any(k.startswith("table1.") for k in keys)
        assert any(k.startswith("crawl.") for k in keys)
        assert any(k.startswith("fig3.") for k in keys)
        assert any(k.startswith("anomalous.") for k in keys)
        assert any(k.startswith("fig7.") for k in keys)

    def test_scale_free_quantities_match_paper(self, study):
        # Rates and structural constants must match even at reduced scale
        # (absolute counts only match at 50k).
        scale_free = {
            "crawl.accept_rate",
            "table1.allowed",
            "table1.allowed_unattested",
            "table1.aa_not_allowed_attested",
            "fig3.doubleclick_rate",
            "fig3.criteo_rate",
            "anomalous.same_sld",
            "anomalous.gtm_share",
            "anomalous.javascript",
            "enroll.first_year",
        }
        failures = [
            c for c in study.comparisons() if c.key in scale_free and not c.ok
        ]
        assert not failures, failures

    def test_render_comparisons(self, study):
        text = render_comparisons(study.comparisons())
        assert "paper" in text and "measured" in text
        assert "yes" in text

    def test_stats_and_calltypes_included(self, study):
        from repro.browser.topics.types import ApiCallType

        assert study.stats.ok == study.crawl.report.ok
        assert study.calltype_anomalous.share(ApiCallType.JAVASCRIPT) == 1.0
        assert study.calltype_legit.total > 0

    def test_reuses_prebuilt_artifacts(self, small_config, world, crawl, study):
        rebuilt = run_full_study(
            ExperimentConfig(world=small_config), world=world, crawl=crawl
        )
        assert rebuilt.table1 == study.table1
        assert rebuilt.fig5 == study.fig5


class TestExperimentConfig:
    def test_paper_scale(self):
        config = ExperimentConfig.paper_scale()
        assert config.world.site_count == 50_000
        assert config.corrupt_allowlist

    def test_small(self):
        config = ExperimentConfig.small(1_000)
        assert config.world.site_count == 1_000

    def test_limit_respected(self):
        config = ExperimentConfig(world=WorldConfig.small(400), limit=100)
        result = run_full_study(config)
        assert result.crawl.report.targets == 100
