"""Tests for the command-line interface (invoking main() in-process)."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["not-a-command"])

    def test_defaults(self):
        args = build_parser().parse_args(["study"])
        assert args.sites == 50_000 and args.seed == 1


class TestCommands:
    def test_study_small(self, capsys, tmp_path):
        code = main(
            ["study", "--sites", "1500", "--out", str(tmp_path / "out")]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "Table 1" in out
        assert "Figure 7" in out
        assert "Paper vs measured" in out
        assert (tmp_path / "out" / "table1.csv").exists()
        assert (tmp_path / "out" / "d_ba.jsonl").exists()

    def test_crawl_then_analyze(self, capsys, tmp_path):
        out_dir = str(tmp_path / "campaign")
        assert main(["crawl", "--sites", "1200", "--out", out_dir]) == 0
        capsys.readouterr()
        assert main(["analyze", "--data", out_dir]) == 0
        out = capsys.readouterr().out
        assert "Table 1" in out
        assert "distillery.com" in out

    def test_crawl_sharded(self, tmp_path):
        out_dir = str(tmp_path / "campaign")
        assert main(
            ["crawl", "--sites", "1200", "--out", out_dir, "--shards", "3"]
        ) == 0

    def test_crawl_healthy_allowlist(self, capsys, tmp_path):
        out_dir = str(tmp_path / "campaign")
        assert main(
            [
                "crawl", "--sites", "1200", "--out", out_dir,
                "--healthy-allowlist",
            ]
        ) == 0
        capsys.readouterr()
        assert main(["analyze", "--data", out_dir]) == 0
        out = capsys.readouterr().out
        # With gating intact, no !Allowed caller gets through.
        assert "!Allowed                    0" in out

    def test_crawl_span_out_round_trips(self, capsys, tmp_path):
        out_dir = str(tmp_path / "campaign")
        span_path = tmp_path / "spans.jsonl"
        assert main(
            [
                "crawl", "--sites", "1200", "--out", out_dir,
                "--span-out", str(span_path),
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "spans to" in out
        assert "Campaign profile" in out
        assert "stage breakdown" in out

        from repro.obs import SpanRecorder

        spans = SpanRecorder.read_jsonl(span_path)
        assert spans
        assert SpanRecorder.read_meta(span_path).dropped == 0
        assert any(s.name == "campaign" for s in spans)

    def test_crawl_chrome_trace_is_valid(self, capsys, tmp_path):
        """Acceptance pin: --chrome-trace-out emits loadable trace JSON
        where every event has ph/ts/name and B/E pairs balance."""
        import json

        out_dir = str(tmp_path / "campaign")
        trace_path = tmp_path / "trace.json"
        assert main(
            [
                "crawl", "--sites", "1200", "--out", out_dir, "--shards", "3",
                "--chrome-trace-out", str(trace_path),
            ]
        ) == 0
        capsys.readouterr()
        data = json.loads(trace_path.read_text())
        events = data["traceEvents"]
        assert events
        stacks = {}
        for event in events:
            assert event["ph"] in ("B", "E")
            assert "ts" in event and "name" in event
            stack = stacks.setdefault((event["pid"], event["tid"]), [])
            if event["ph"] == "B":
                stack.append(event["name"])
            else:
                assert stack and stack[-1] == event["name"]
                stack.pop()
        assert all(not stack for stack in stacks.values())

    def test_crawl_progress_line(self, capsys, tmp_path):
        out_dir = str(tmp_path / "campaign")
        assert main(
            [
                "crawl", "--sites", "1200", "--out", out_dir, "--shards", "2",
                "--progress",
            ]
        ) == 0
        err = capsys.readouterr().err
        assert "crawl:" in err
        assert "visits/s" in err
        assert "shards 0:" in err
        assert err.endswith("\n")

    def test_crawl_sharded_profile_names_straggler(self, capsys, tmp_path):
        out_dir = str(tmp_path / "campaign")
        assert main(
            [
                "crawl", "--sites", "1500", "--out", out_dir, "--shards", "3",
                "--span-out", str(tmp_path / "spans.jsonl"),
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "straggler:" in out
        assert "bounds the campaign's finished_at" in out

    def test_crawl_checkpointed_resume_is_byte_identical(self, capsys, tmp_path):
        """Acceptance pin: --resume over the same checkpoint directory
        re-archives the campaign byte-for-byte."""
        first = tmp_path / "first"
        second = tmp_path / "second"
        checkpoints = str(tmp_path / "checkpoints")
        base = [
            "crawl", "--sites", "1200", "--shards", "2",
            "--checkpoint-dir", checkpoints, "--checkpoint-every", "100",
        ]
        assert main(base + ["--out", str(first)]) == 0
        capsys.readouterr()
        assert main(base + ["--out", str(second), "--resume"]) == 0
        out = capsys.readouterr().out
        assert "resumed shards 0, 1" in out
        for name in sorted(p.name for p in first.iterdir()):
            assert (first / name).read_bytes() == (second / name).read_bytes()

    def test_crawl_checkpoint_dir_created(self, capsys, tmp_path):
        checkpoints = tmp_path / "checkpoints"
        assert main(
            [
                "crawl", "--sites", "1200", "--out", str(tmp_path / "c"),
                "--checkpoint-dir", str(checkpoints),
                "--checkpoint-every", "150",
            ]
        ) == 0
        assert (checkpoints / "MANIFEST.json").exists()
        shard_files = list((checkpoints / "shard-00").glob("checkpoint-*.jsonl"))
        assert shard_files

    def test_analyze_missing_dir(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            main(["analyze", "--data", str(tmp_path / "nope")])

    def test_probe_attested(self, capsys):
        code = main(["probe", "--sites", "800", "distillery.com"])
        out = capsys.readouterr().out
        assert code == 0
        assert "valid attestation: True" in out
        assert "Allowed:           False" in out

    def test_probe_unknown_domain_fails(self, capsys):
        code = main(["probe", "--sites", "800", "no-such-party.example"])
        assert code == 1

    def test_reident(self, capsys):
        code = main(
            ["reident", "--population", "15", "--epochs", "2"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "observation epochs" in out or "epochs" in out
        assert "uplift" in out

    def test_monitor(self, capsys):
        code = main(
            [
                "monitor", "--sites", "1000",
                "--dates", "2023-10-01,2024-06-01",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "2023-10-01" in out and "2024-06-01" in out

    def test_crawl_us_vantage_sees_fewer_banners(self, capsys, tmp_path):
        eu_dir = str(tmp_path / "eu")
        us_dir = str(tmp_path / "us")
        main(["crawl", "--sites", "2000", "--out", eu_dir])
        eu_line = capsys.readouterr().out.splitlines()[0]
        main(["crawl", "--sites", "2000", "--out", us_dir, "--vantage", "us"])
        us_line = capsys.readouterr().out.splitlines()[0]

        import re

        def accepted(line: str) -> int:
            match = re.search(r"([\d,]+) After-Accept", line)
            assert match is not None, line
            return int(match.group(1).replace(",", ""))

        assert accepted(us_line) < accepted(eu_line)

    def test_robustness(self, capsys):
        code = main(["robustness", "--sites", "1200", "--seeds", "2,5"])
        out = capsys.readouterr().out
        assert code == 0
        assert "Seed grid" in out
        assert "within their paper bands" in out

    def test_diff_identical_campaigns(self, capsys, tmp_path):
        out_dir = str(tmp_path / "c")
        main(["crawl", "--sites", "1200", "--out", out_dir])
        capsys.readouterr()
        code = main(["diff", "--before", out_dir, "--after", out_dir])
        out = capsys.readouterr().out
        assert code == 0
        assert "(none)" in out

    def test_targeting(self, capsys):
        code = main(["targeting", "--population", "15", "--epochs", "2"])
        out = capsys.readouterr().out
        assert code == 0
        assert "cookie-profile" in out and "topics" in out

    def test_audit_cmp(self, capsys):
        code = main(["audit-cmp", "--sites", "2500"])
        out = capsys.readouterr().out
        assert code == 0
        assert "HubSpot" in out
        assert "flagged CMPs" in out


class TestValidateCommand:
    def test_crawl_with_validate_flag_audits_archive(self, capsys, tmp_path):
        out_dir = str(tmp_path / "campaign")
        code = main(["crawl", "--sites", "300", "--out", out_dir, "--validate"])
        out = capsys.readouterr().out
        assert code == 0
        assert f"audit of {out_dir}" in out
        assert "RESULT: PASS" in out

    def test_validate_archive_passes_and_writes_json(self, capsys, tmp_path):
        out_dir = str(tmp_path / "campaign")
        assert main(["crawl", "--sites", "300", "--out", out_dir]) == 0
        capsys.readouterr()
        json_out = str(tmp_path / "audit.json")
        code = main(["validate", out_dir, "--json-out", json_out])
        out = capsys.readouterr().out
        assert code == 0
        assert "RESULT: PASS" in out
        import json

        payload = json.loads((tmp_path / "audit.json").read_text())
        assert payload["ok"] is True

    def test_validate_corrupted_archive_fails(self, capsys, tmp_path):
        out_dir = tmp_path / "campaign"
        assert main(["crawl", "--sites", "300", "--out", str(out_dir)]) == 0
        capsys.readouterr()
        import json

        report = json.loads((out_dir / "report.json").read_text())
        report["ok"] += 5
        (out_dir / "report.json").write_text(json.dumps(report))
        code = main(["validate", str(out_dir)])
        out = capsys.readouterr().out
        assert code == 1
        assert "FAIL report-accounting" in out
        assert "RESULT: FAIL" in out

    def test_validate_without_archive_errors(self, capsys):
        code = main(["validate"])
        out = capsys.readouterr().out
        assert code == 2
        assert "archive directory is required" in out

    def test_validate_metamorphic(self, capsys, tmp_path):
        json_out = str(tmp_path / "meta.json")
        code = main(
            [
                "validate",
                "--metamorphic",
                "--sites",
                "160",
                "--shard-counts",
                "1,2",
                "--backends",
                "serial",
                "--json-out",
                json_out,
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "RESULT: PASS" in out
        import json

        payload = json.loads((tmp_path / "meta.json").read_text())
        assert payload["ok"] is True
        assert len(payload["relations"]) == 6


_TINY_SWEEP_TOML = """\
name = "cli-tiny"

[world]
sites = 300
seed = 5

[[axes]]
name = "allowlist"
[[axes.values]]
name = "corrupted"
allowlist = "corrupted"
[[axes.values]]
name = "healthy"
allowlist = "healthy"

[baseline]
allowlist = "corrupted"

[[assertions]]
kind = "bound"
metric = "anomalous_calls"
where.allowlist = "healthy"
equals = 0
"""


class TestSweepCommand:
    def test_sweep_list_prints_cell_table(self, capsys):
        code = main(["sweep", "ci_smoke", "--list"])
        out = capsys.readouterr().out
        assert code == 0
        assert "4 cell(s)" in out
        assert "allowlist=corrupted,vantage=eu *baseline" in out
        assert "allowlist=healthy,vantage=us" in out

    def test_sweep_requires_out(self, capsys):
        code = main(["sweep", "ci_smoke"])
        err = capsys.readouterr().err
        assert code == 2
        assert "--out is required" in err

    def test_sweep_unknown_scenario_errors(self, capsys):
        code = main(["sweep", "nope_not_a_scenario", "--out", "x"])
        err = capsys.readouterr().err
        assert code == 2
        assert "declared" in err

    def test_sweep_runs_and_audit_passes(self, capsys, tmp_path):
        spec_path = tmp_path / "tiny.toml"
        spec_path.write_text(_TINY_SWEEP_TOML)
        out_dir = tmp_path / "sweep"
        json_out = tmp_path / "sweep-report.json"
        code = main(
            [
                "sweep",
                str(spec_path),
                "--out",
                str(out_dir),
                "--backend",
                "serial",
                "--json-out",
                str(json_out),
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "result: OK" in out
        assert "[PASS] anomalous_calls == 0 where allowlist=healthy" in out
        assert (out_dir / "sweep.json").exists()
        assert (out_dir / "report" / "index.html").exists()
        import json

        payload = json.loads(json_out.read_text())
        assert payload["ok"] is True
        assert payload["scenario"] == "cli-tiny"
        assert len(payload["cells"]) == 2

        code = main(["validate", str(out_dir), "--sweep"])
        audit_out = capsys.readouterr().out
        assert code == 0
        assert "RESULT: PASS" in audit_out
        assert "sweep-archive-integrity" in audit_out

    def test_validate_sweep_requires_directory(self, capsys):
        code = main(["validate", "--sweep"])
        out = capsys.readouterr().out + capsys.readouterr().err
        assert code == 2

    def test_sweep_sites_override(self, capsys, tmp_path):
        spec_path = tmp_path / "tiny.toml"
        spec_path.write_text(_TINY_SWEEP_TOML)
        code = main(
            ["sweep", str(spec_path), "--sites", "250", "--list"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "2 cell(s)" in out
