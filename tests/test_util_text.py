"""Unit tests for text helpers."""

from repro.util.text import (
    contains_keyword,
    stable_digest,
    synthesize_name,
    tokens,
)


class TestTokens:
    def test_basic(self):
        assert tokens("Accept All Cookies!") == ["accept", "all", "cookies"]

    def test_numbers_kept(self):
        assert tokens("topic 42") == ["topic", "42"]

    def test_empty(self):
        assert tokens("...") == []

    def test_hostname_tokens(self):
        assert tokens("www.news-site.co.uk") == ["www", "news", "site", "co", "uk"]


class TestContainsKeyword:
    def test_single_word_match(self):
        assert contains_keyword("Please ACCEPT now", ["accept"]) == "accept"

    def test_phrase_match(self):
        assert contains_keyword("Click to accept all cookies", ["accept all"])

    def test_no_substring_false_positive(self):
        # "accept" must not match inside "unacceptable".
        assert contains_keyword("unacceptable terms", ["accept"]) is None

    def test_first_match_wins(self):
        found = contains_keyword("accept and agree", ["agree", "accept"])
        assert found == "agree"  # list order, not text order

    def test_punctuation_insensitive(self):
        assert contains_keyword("J'accepte!", ["j'accepte"]) is not None

    def test_no_match(self):
        assert contains_keyword("continue to site", ["accept", "agree"]) is None


class TestStableDigest:
    def test_deterministic(self):
        assert stable_digest("a", "b") == stable_digest("a", "b")

    def test_order_matters(self):
        assert stable_digest("a", "b") != stable_digest("b", "a")

    def test_separator_prevents_concatenation_collision(self):
        assert stable_digest("ab") != stable_digest("a", "b")

    def test_64_bit_range(self):
        digest = stable_digest("x")
        assert 0 <= digest < 2**64


class TestSynthesizeName:
    def test_deterministic(self):
        assert synthesize_name(7) == synthesize_name(7)

    def test_salt_changes_name(self):
        assert synthesize_name(7, "a") != synthesize_name(7, "b")

    def test_dns_safe(self):
        for index in range(200):
            name = synthesize_name(index, "test")
            assert name.replace("-", "").isalnum()
            assert name == name.lower()

    def test_reasonable_diversity(self):
        names = {synthesize_name(i, "div") for i in range(1000)}
        assert len(names) > 700  # collisions allowed, but rare
