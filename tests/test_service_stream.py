"""Property test: the event stream reassembles the batch result, always.

For arbitrary small worlds and shard counts, the ordered stream of a
job's events must be a lossless, duplicate-free encoding of the batch
campaign:

* sequence numbers are contiguous from 1 and end in exactly one
  terminal event;
* each effective shard produces exactly one ``shard-result``;
* the rebased Before-Accept rows in the ``shard-result`` events,
  ordered by shard, are **byte-identical** to the batch ``save_crawl``
  archive's ``d_ba.jsonl``;
* a reconnect from any ``since`` offset replays exactly the suffix —
  no duplicates, no gaps.
"""

from __future__ import annotations

import asyncio
import tempfile
from pathlib import Path

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.crawler.archive import save_crawl
from repro.crawler.parallel import ShardedCrawl
from repro.service import (
    CrawlService,
    EVENT_JOB_DONE,
    EVENT_SHARD_RESULT,
    JobSpec,
    JobState,
)
from repro.web.generator import WebGenerator


async def _run_streamed(spec: JobSpec, data_dir: Path):
    """Submit one job and live-consume its full event stream."""
    service = CrawlService(data_dir, backend="serial")
    await service.start()
    job_id = await service.submit(spec)
    replay, sub = service.subscribe(job_id)
    events = list(replay)
    while not (events and events[-1].terminal):
        events.append(await sub.get())
    service.unsubscribe(sub)
    record = await service.wait(job_id)
    # Reconnect semantics, checked while the log is still live: from any
    # offset, the replay is exactly the suffix.
    probe = len(events) // 2
    suffix, sub2 = service.subscribe(job_id, since=probe)
    service.unsubscribe(sub2)
    await service.close()
    return record, events, probe, suffix


@given(
    sites=st.integers(min_value=24, max_value=96),
    shards=st.integers(min_value=1, max_value=4),
    seed=st.integers(min_value=1, max_value=5),
)
@settings(
    max_examples=6,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
def test_stream_reassembles_batch_result(sites: int, shards: int, seed: int):
    spec = JobSpec(
        sites=sites,
        seed=seed,
        shards=shards,
        checkpoint_every=10,
        progress_every=5,
    )
    with tempfile.TemporaryDirectory(prefix="repro-service-prop-") as tmp:
        tmp_path = Path(tmp)
        record, events, probe, suffix = asyncio.run(
            _run_streamed(spec, tmp_path / "svc")
        )
        assert record.state is JobState.DONE

        # Contiguity and single termination.
        assert [event.seq for event in events] == list(
            range(1, len(events) + 1)
        )
        terminals = [event for event in events if event.terminal]
        assert len(terminals) == 1 and terminals[0] is events[-1]
        assert events[-1].kind == EVENT_JOB_DONE

        # One shard-result per effective shard, none duplicated.
        results = [e for e in events if e.kind == EVENT_SHARD_RESULT]
        shard_ids = [e.payload["shard"] for e in results]
        assert len(shard_ids) == len(set(shard_ids))
        batch_world = WebGenerator(spec.world_config()).generate()
        batch = ShardedCrawl(
            batch_world, shard_count=shards, backend="serial"
        ).run()
        archive = save_crawl(batch, tmp_path / "batch")
        assert sorted(shard_ids) == list(range(len(results)))

        # Completeness: shard-ordered streamed rows == the batch archive.
        streamed = [
            line
            for _, payload in sorted(
                (e.payload["shard"], e.payload) for e in results
            )
            for line in payload["d_ba"]
        ]
        archived = (
            (archive / "d_ba.jsonl").read_text(encoding="utf-8").splitlines()
        )
        assert streamed == archived

        # Per-shard totals in the stream match the batch report.
        assert sum(e.payload["ok"] for e in results) == batch.report.ok
        assert (
            sum(e.payload["accepted"] for e in results)
            == batch.report.accepted
        )

        # Reconnect from the middle: exactly the suffix, nothing else.
        assert [event.seq for event in suffix] == [
            event.seq for event in events[probe:]
        ]
        assert [event.kind for event in suffix] == [
            event.kind for event in events[probe:]
        ]
