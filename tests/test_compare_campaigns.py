"""Tests for campaign-to-campaign diffing."""

import pytest

from repro.analysis.compare_campaigns import diff_campaigns, render_diff
from repro.crawler.campaign import CrawlCampaign
from repro.longitudinal.evolution import world_at
from repro.util.timeline import timestamp_from_date


class TestSelfDiff:
    def test_identical_campaigns_empty_diff(self, crawl):
        diff = diff_campaigns(crawl, crawl)
        assert diff.new_callers == ()
        assert diff.gone_callers == ()
        assert diff.rate_changes == ()
        assert diff.questionable_delta == 0
        assert diff.churn == 0


class TestSnapshotDiff:
    @pytest.fixture(scope="class")
    def snapshots(self, world):
        early_world = world_at(world, timestamp_from_date(2023, 11, 1))
        early = CrawlCampaign(early_world, corrupt_allowlist=True, limit=3_000).run()
        late = CrawlCampaign(world, corrupt_allowlist=True, limit=3_000).run()
        return early, late

    def test_adoption_appears_as_new_callers(self, snapshots):
        early, late = snapshots
        diff = diff_campaigns(early, late)
        assert len(diff.new_callers) > 5
        assert len(diff.new_callers) > len(diff.gone_callers)

    def test_rates_ramp_upward(self, snapshots):
        early, late = snapshots
        diff = diff_campaigns(early, late)
        ups = sum(1 for change in diff.rate_changes if change.delta > 0)
        downs = len(diff.rate_changes) - ups
        assert ups > downs

    def test_questionable_grows_with_adoption(self, snapshots):
        early, late = snapshots
        diff = diff_campaigns(early, late)
        assert diff.questionable_delta >= 0

    def test_min_rate_delta_filter(self, snapshots):
        early, late = snapshots
        loose = diff_campaigns(early, late, min_rate_delta=1.0)
        strict = diff_campaigns(early, late, min_rate_delta=30.0)
        assert len(strict.rate_changes) <= len(loose.rate_changes)
        assert all(abs(c.delta) >= 30.0 for c in strict.rate_changes)

    def test_render(self, snapshots):
        early, late = snapshots
        text = render_diff(diff_campaigns(early, late))
        assert "new active CPs" in text
        assert "questionable CPs" in text
