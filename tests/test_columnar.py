"""Columnar data plane: round-trip fidelity, splicing, archive identity.

The columnar buffers must be semantically invisible: any sequence of
visit records pushed through :class:`VisitBuffers` and re-materialised
comes back equal (including redirect rows, call-free rows and None
optionals), buffers survive pickling (the process-backend transport),
and an archive written from the columnar hot path is byte-identical to
one written from pre-columnar record objects.
"""

import dataclasses
import pickle
import string
import tempfile
from pathlib import Path

from hypothesis import given, settings, strategies as st

from repro.attestation.allowlist import GatingDecision
from repro.browser.topics.manager import TopicsApiCall
from repro.browser.topics.types import ApiCallType
from repro.crawler.columnar import VisitBuffers
from repro.crawler.dataset import (
    CallRecord,
    Dataset,
    PHASE_AFTER,
    PHASE_BEFORE,
    VisitRecord,
)

# -- strategies -----------------------------------------------------------------

_label = st.text(
    alphabet=string.ascii_lowercase + string.digits, min_size=1, max_size=8
)
_domain = st.lists(_label, min_size=2, max_size=3).map(".".join)

_call = st.builds(
    CallRecord,
    caller=_domain,
    caller_host=_domain.map(lambda d: f"bid.{d}"),
    site=_domain,
    call_type=st.sampled_from([t.value for t in ApiCallType]),
    at=st.integers(min_value=0, max_value=2**40),
    decision=st.sampled_from([d.value for d in GatingDecision]),
    topics_returned=st.integers(min_value=0, max_value=10),
)

_record = st.builds(
    VisitRecord,
    rank=st.integers(min_value=1, max_value=50_000),
    domain=_domain,
    final_domain=_domain,  # frequently differs from domain: redirect rows
    url=_domain.map(lambda d: f"https://www.{d}/"),
    final_url=_domain.map(lambda d: f"https://www.{d}/"),
    phase=st.sampled_from([PHASE_BEFORE, PHASE_AFTER]),
    banner_present=st.booleans(),
    banner_language=st.one_of(st.none(), st.sampled_from(["en", "de", "fr"])),
    accept_clicked=st.booleans(),
    cmp=st.one_of(st.none(), st.sampled_from(["OneTrust", "HubSpot"])),
    third_parties=st.lists(_domain, max_size=4).map(tuple),
    calls=st.lists(_call, max_size=3).map(tuple),
)


class TestRoundTrip:
    @settings(max_examples=60)
    @given(st.lists(_record, max_size=8))
    def test_records_survive_columns(self, records):
        buffers = VisitBuffers()
        for record in records:
            buffers.append_record(record)
        assert len(buffers) == len(records)
        assert [buffers.record_at(i) for i in range(len(buffers))] == records
        assert list(buffers.iter_records()) == records

    @settings(max_examples=30)
    @given(st.lists(_record, max_size=6))
    def test_buffers_survive_pickle(self, records):
        buffers = VisitBuffers()
        for record in records:
            buffers.append_record(record)
        revived = pickle.loads(pickle.dumps(buffers))
        assert list(revived.iter_records()) == records

    @settings(max_examples=30)
    @given(
        st.lists(_record, max_size=5),
        st.lists(_record, max_size=5),
        st.integers(min_value=0, max_value=10_000),
    )
    def test_extend_rebases_ranks_only(self, left, right, offset):
        buffers = VisitBuffers()
        for record in left:
            buffers.append_record(record)
        other = VisitBuffers()
        for record in right:
            other.append_record(record)
        buffers.extend(other, offset)
        expected = left + [
            dataclasses.replace(record, rank=record.rank + offset)
            for record in right
        ]
        assert list(buffers.iter_records()) == expected

    def test_edge_rows(self):
        """The corner shapes the property test may not always draw."""
        rows = [
            # redirect, no calls, no third parties, no banner metadata
            VisitRecord(
                rank=7,
                domain="a.com",
                final_domain="b.com",
                url="https://www.a.com/",
                final_url="https://www.b.com/",
                phase=PHASE_BEFORE,
                banner_present=False,
                banner_language=None,
                accept_clicked=False,
                cmp=None,
                third_parties=(),
                calls=(),
            ),
            # dense row right after an empty one (offset bookkeeping)
            VisitRecord(
                rank=8,
                domain="c.com",
                final_domain="c.com",
                url="https://www.c.com/",
                final_url="https://www.c.com/",
                phase=PHASE_AFTER,
                banner_present=True,
                banner_language="en",
                accept_clicked=True,
                cmp="OneTrust",
                third_parties=("criteo.com", "taboola.com"),
                calls=(
                    CallRecord(
                        caller="criteo.com",
                        caller_host="bid.criteo.com",
                        site="c.com",
                        call_type="fetch",
                        at=42,
                        decision="allowed-enrolled",
                        topics_returned=3,
                    ),
                ),
            ),
        ]
        buffers = VisitBuffers()
        for row in rows:
            buffers.append_record(row)
        assert list(buffers.iter_records()) == rows
        assert buffers.third_parties_at(0) == ()
        assert buffers.third_parties_at(1) == ("criteo.com", "taboola.com")
        assert buffers.call_span(0) == (0, 0)
        assert buffers.call_span(1) == (0, 1)


class TestHotPathAppend:
    def test_append_visit_matches_append_record(self):
        """The record-free hot path lands the same row as the record path."""
        api_call = TopicsApiCall(
            caller="criteo.com",
            caller_host="bid.criteo.com",
            site="news.com",
            call_type=ApiCallType.FETCH,
            at=42,
            decision=GatingDecision.ALLOWED_ENROLLED,
            topics_returned=2,
        )
        record = VisitRecord(
            rank=1,
            domain="news.com",
            final_domain="news.com",
            url="https://www.news.com/",
            final_url="https://www.news.com/",
            phase=PHASE_BEFORE,
            banner_present=True,
            banner_language="en",
            accept_clicked=False,
            cmp="OneTrust",
            third_parties=("criteo.com",),
            calls=(CallRecord.from_api_call(api_call),),
        )
        via_record = VisitBuffers()
        via_record.append_record(record)
        via_visit = VisitBuffers()
        via_visit.append_visit(
            rank=1,
            domain="news.com",
            final_domain="news.com",
            url="https://www.news.com/",
            final_url="https://www.news.com/",
            phase=PHASE_BEFORE,
            banner_present=True,
            banner_language="en",
            accept_clicked=False,
            cmp="OneTrust",
            third_parties=("criteo.com",),
            api_calls=(api_call,),
        )
        assert via_visit.record_at(0) == via_record.record_at(0)


class TestArchiveByteIdentity:
    @settings(max_examples=20)
    @given(st.lists(_record, max_size=6))
    def test_columnar_vs_legacy_jsonl_bytes(self, records):
        """A dataset built column-wise archives byte-identically to one
        built from pre-materialised record objects (the legacy path)."""
        legacy = Dataset("D", records)  # record-object ingestion
        columnar = Dataset("D")
        for record in records:  # the hot loop's scalar appends
            columnar.append_visit(
                rank=record.rank,
                domain=record.domain,
                final_domain=record.final_domain,
                url=record.url,
                final_url=record.final_url,
                phase=record.phase,
                banner_present=record.banner_present,
                banner_language=record.banner_language,
                accept_clicked=record.accept_clicked,
                cmp=record.cmp,
                third_parties=record.third_parties,
                api_calls=[
                    TopicsApiCall(
                        caller=call.caller,
                        caller_host=call.caller_host,
                        site=call.site,
                        call_type=ApiCallType(call.call_type),
                        at=call.at,
                        decision=GatingDecision(call.decision),
                        topics_returned=call.topics_returned,
                    )
                    for call in record.calls
                ],
            )
        with tempfile.TemporaryDirectory() as scratch:
            root = Path(scratch)
            legacy.to_jsonl(root / "legacy.jsonl")
            columnar.to_jsonl(root / "columnar.jsonl")
            assert (root / "columnar.jsonl").read_bytes() == (
                root / "legacy.jsonl"
            ).read_bytes()


class TestDatasetFacade:
    def test_records_memoised(self):
        dataset = Dataset("D")
        dataset.append_visit(
            rank=1,
            domain="a.com",
            final_domain="a.com",
            url="https://www.a.com/",
            final_url="https://www.a.com/",
            phase=PHASE_BEFORE,
            banner_present=False,
            banner_language=None,
            accept_clicked=False,
            cmp=None,
            third_parties=(),
        )
        first = next(iter(dataset))
        assert next(iter(dataset)) is first  # lazy, materialised once

    def test_from_buffers_shares_columns(self):
        buffers = VisitBuffers()
        buffers.append_visit(
            rank=3,
            domain="a.com",
            final_domain="a.com",
            url="https://www.a.com/",
            final_url="https://www.a.com/",
            phase=PHASE_AFTER,
            banner_present=True,
            banner_language="en",
            accept_clicked=True,
            cmp=None,
            third_parties=("x.com",),
        )
        dataset = Dataset.from_buffers("D_AA", buffers)
        assert dataset.buffers is buffers
        assert len(dataset) == 1
        assert dataset.by_domain("a.com").rank == 3
