"""NDJSON protocol tests: the socket surface the CLI verbs stand on.

A real :class:`ServiceServer` runs on a background thread's event loop;
the synchronous :class:`ServiceClient` (what ``repro submit`` / ``watch``
use) talks to it over the Unix socket exactly as a separate process
would.
"""

from __future__ import annotations

import asyncio
import threading
from pathlib import Path

import pytest

from repro.service import (
    CrawlService,
    ServiceClient,
    ServiceClientError,
    ServiceServer,
)

SITES = 90
SPEC = {"sites": SITES, "seed": 2, "shards": 2, "checkpoint_every": 20}


class ServiceHarness:
    """A live service + socket server on a background event loop."""

    def __init__(self, root: Path) -> None:
        self.data_dir = root / "service"
        self.socket_path = root / "service.sock"
        self._ready = threading.Event()
        self._failure: BaseException | None = None
        self._thread = threading.Thread(target=self._run, daemon=True)

    def start(self) -> "ServiceHarness":
        self._thread.start()
        assert self._ready.wait(timeout=30), "service failed to start"
        if self._failure is not None:
            raise self._failure
        return self

    def join(self, timeout: float = 120.0) -> None:
        self._thread.join(timeout=timeout)
        assert not self._thread.is_alive(), "service did not shut down"
        if self._failure is not None:
            raise self._failure

    def _run(self) -> None:
        try:
            asyncio.run(self._main())
        except BaseException as exc:  # noqa: BLE001 — surfaced in the test
            self._failure = exc
            self._ready.set()

    async def _main(self) -> None:
        service = CrawlService(self.data_dir, backend="serial")
        await service.start()
        server = ServiceServer(service, self.socket_path)
        await server.start()
        self._ready.set()
        await server.serve_until_shutdown()


@pytest.fixture
def harness(tmp_path) -> ServiceHarness:
    h = ServiceHarness(tmp_path).start()
    yield h
    if h._thread.is_alive():
        ServiceClient(h.socket_path).shutdown()
    h.join()


class TestRoundTrips:
    def test_full_job_lifecycle_over_the_socket(self, harness):
        client = ServiceClient(harness.socket_path)
        assert client.ping()

        job_id = client.submit(SPEC)
        assert job_id == "job-000001"

        kinds = []
        seqs = []
        for item in client.watch(job_id):
            event = item.get("event")
            if event is not None:
                kinds.append(event["kind"])
                seqs.append(event["seq"])
        assert kinds[0] == "job-submitted"
        assert kinds[-1] == "job-done"
        assert "shard-result" in kinds
        assert seqs == list(range(1, len(seqs) + 1))

        status = client.status(job_id)
        assert status["state"] == "done"
        assert status["summary"]["targets"] == SITES
        assert Path(status["archive_dir"]).is_dir()

        jobs = client.list_jobs()
        assert [job["job_id"] for job in jobs] == [job_id]

        # Reconnect from an offset: only the suffix comes back.
        tail = [
            item["event"]["seq"]
            for item in client.watch(job_id, since=seqs[2])
            if "event" in item
        ]
        assert tail == seqs[3:]

        # Reconnect after the terminal event was already delivered: the
        # stream closes immediately instead of hanging.
        assert list(client.watch(job_id, since=seqs[-1])) == []

    def test_metrics_exposition(self, harness):
        client = ServiceClient(harness.socket_path)
        job_id = client.submit(SPEC)
        for _ in client.watch(job_id):
            pass
        exposition = client.metrics()
        assert "# TYPE service_jobs_submitted_total counter" in exposition
        assert "service_jobs_done_total 1" in exposition
        assert "service_world_builds_total 1" in exposition
        # Job-level crawl metrics were absorbed into the service registry.
        assert "crawl_visits_total" in exposition

    def test_errors_come_back_as_error_lines(self, harness):
        client = ServiceClient(harness.socket_path)
        with pytest.raises(ServiceClientError, match="no such job"):
            client.status("job-999999")
        with pytest.raises(ServiceClientError, match="unknown job spec field"):
            client.submit({"sites": 50, "sides": 3})
        with pytest.raises(ServiceClientError, match="sites must be positive"):
            client.submit({"sites": -1})
        with pytest.raises(ServiceClientError, match="unknown op"):
            client._request({"op": "frobnicate"})
        with pytest.raises(ServiceClientError, match="policy"):
            list(client.watch("job-000001", policy="mystery"))

    def test_cancel_over_the_socket(self, harness):
        client = ServiceClient(harness.socket_path)
        job_id = client.submit(
            {
                "sites": 240,
                "seed": 5,
                "shards": 2,
                "checkpoint_every": 10,
                "progress_every": 10,
            }
        )
        cancelled = False
        for item in client.watch(job_id):
            event = item.get("event")
            if event is None:
                continue
            if event["kind"] == "shard-progress" and not cancelled:
                client.cancel(job_id)
                cancelled = True
            if event["kind"] == "job-cancelled":
                break
        assert cancelled
        assert client.status(job_id)["state"] == "cancelled"

    def test_shutdown_stops_the_server(self, harness):
        client = ServiceClient(harness.socket_path)
        client.shutdown()
        harness.join()
        assert not harness.socket_path.exists()
