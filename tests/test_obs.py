"""Unit tests for the observability layer: tracer, metrics, round-trips."""

import pytest

from repro.analysis.obs_report import (
    build_metrics_report,
    diff_snapshots,
    render_divergences,
    render_metrics_report,
)
from repro.obs import (
    EventKind,
    MetricsRegistry,
    MetricsSnapshot,
    NULL_METRICS,
    NULL_TRACER,
    NullMetrics,
    NullTracer,
    Tracer,
)
from repro.obs.metrics import format_series


class TestTracer:
    def test_emit_and_read_back(self):
        tracer = Tracer()
        tracer.emit(EventKind.VISIT_STARTED, at=10, domain="a.com")
        tracer.emit(EventKind.VISIT_FINISHED, at=12, domain="a.com", ok=True)
        assert len(tracer) == 2
        started = tracer.events(EventKind.VISIT_STARTED)
        assert len(started) == 1
        assert started[0].at == 10
        assert started[0].fields == {"domain": "a.com"}

    def test_sequence_numbers_order_events(self):
        tracer = Tracer()
        for index in range(5):
            tracer.emit(EventKind.TOPICS_CALL, at=0, index=index)
        assert [event.seq for event in tracer] == [0, 1, 2, 3, 4]

    def test_ring_buffer_drops_oldest(self):
        tracer = Tracer(capacity=3)
        for index in range(10):
            tracer.emit(EventKind.VISIT_STARTED, at=index)
        assert len(tracer) == 3
        assert tracer.emitted == 10
        assert tracer.dropped == 7
        assert [event.at for event in tracer] == [7, 8, 9]

    def test_counts_by_kind_survive_drops(self):
        tracer = Tracer(capacity=2)
        for _ in range(6):
            tracer.emit(EventKind.TOPICS_CALL, at=0)
        assert tracer.counts_by_kind() == {"topics-call": 6}

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            Tracer(capacity=0)

    def test_jsonl_round_trip(self, tmp_path):
        tracer = Tracer()
        tracer.emit(EventKind.BANNER_INTERACTION, at=5, domain="b.com", found=True)
        tracer.emit(
            EventKind.TOPICS_CALL, at=7, caller="c.com", decision="allowed-corrupt"
        )
        path = tmp_path / "trace.jsonl"
        tracer.to_jsonl(path)
        events = Tracer.read_jsonl(path)
        assert events == tracer.events()

    def test_jsonl_meta_records_drops(self, tmp_path):
        tracer = Tracer(capacity=2)
        for index in range(5):
            tracer.emit(EventKind.VISIT_STARTED, at=index)
        path = tmp_path / "trace.jsonl"
        tracer.to_jsonl(path)
        meta = Tracer.read_meta(path)
        assert (meta.emitted, meta.dropped, meta.capacity) == (5, 3, 2)
        assert meta.drop_rate == pytest.approx(0.6)
        # The meta line does not leak into the event stream.
        events = Tracer.read_jsonl(path)
        assert [event.at for event in events] == [3, 4]

    def test_read_meta_none_for_legacy_trace(self, tmp_path):
        path = tmp_path / "legacy.jsonl"
        path.write_text('{"at": 1, "kind": "visit-started", "seq": 0}\n')
        assert Tracer.read_meta(path) is None
        assert len(Tracer.read_jsonl(path)) == 1

    def test_replay_tags_events(self):
        shard = Tracer()
        shard.emit(EventKind.VISIT_STARTED, at=1, domain="a.com")
        parent = Tracer()
        parent.replay(shard, shard=3)
        (event,) = parent.events()
        assert event.fields == {"domain": "a.com", "shard": 3}
        assert event.at == 1

    def test_null_tracer_is_inert(self):
        assert NULL_TRACER.enabled is False
        NULL_TRACER.emit(EventKind.VISIT_STARTED, at=0, domain="x.com")
        assert len(NULL_TRACER) == 0
        assert isinstance(NULL_TRACER, NullTracer)


class TestMetricsRegistry:
    def test_counter_accumulates_per_labelset(self):
        metrics = MetricsRegistry()
        metrics.counter("visits", phase="before")
        metrics.counter("visits", phase="before")
        metrics.counter("visits", phase="after")
        snapshot = metrics.snapshot()
        assert snapshot.counter_value("visits", phase="before") == 2
        assert snapshot.counter_value("visits", phase="after") == 1
        assert snapshot.counter_total("visits") == 3

    def test_label_order_is_canonical(self):
        metrics = MetricsRegistry()
        metrics.counter("calls", type="js", decision="allowed")
        metrics.counter("calls", decision="allowed", type="js")
        assert metrics.snapshot().counter_value(
            "calls", type="js", decision="allowed"
        ) == 2

    def test_gauge_last_write_wins(self):
        metrics = MetricsRegistry()
        metrics.gauge("duration", 10)
        metrics.gauge("duration", 7)
        assert metrics.snapshot().gauge_value("duration") == 7

    def test_histogram_summary(self):
        metrics = MetricsRegistry()
        for value in (1, 2, 2, 40):
            metrics.observe("visit_seconds", value)
        data = metrics.snapshot().histogram("visit_seconds")
        assert data.count == 4
        assert data.total == 45
        assert data.min == 1
        assert data.max == 40
        assert data.mean == pytest.approx(11.25)
        # bounds (1, 2, 5, ...): 1 falls in the first bucket, both 2s in
        # the second, 40 in the (30, 60] bucket.
        assert data.bucket_counts[0] == 1
        assert data.bucket_counts[1] == 2
        assert sum(data.bucket_counts) == 4

    def test_quantile_interpolates_within_buckets(self):
        metrics = MetricsRegistry()
        for value in range(1, 101):  # 1..100 over buckets (1,2,5,...,1800)
            metrics.observe("seconds", value)
        data = metrics.snapshot().histogram("seconds")
        assert data.quantile(0.0) == 1
        assert data.quantile(1.0) == 100
        # p50 = 50th of 100 observations: inside the (30, 60] bucket.
        assert 30 <= data.quantile(0.50) <= 60
        assert data.quantile(0.95) >= data.quantile(0.50)
        # Estimates never leave the observed range.
        assert 1 <= data.quantile(0.99) <= 100

    def test_quantile_single_observation(self):
        metrics = MetricsRegistry()
        metrics.observe("seconds", 3.5)
        data = metrics.snapshot().histogram("seconds")
        for q in (0.0, 0.5, 0.99, 1.0):
            assert data.quantile(q) == 3.5

    def test_quantile_of_empty_histogram(self):
        from repro.obs import HistogramData

        empty = HistogramData(
            bounds=(1.0,), bucket_counts=(0, 0), count=0, total=0.0,
            min=float("inf"), max=float("-inf"),
        )
        assert empty.quantile(0.5) == 0.0

    def test_histogram_total_merges_labelsets(self):
        metrics = MetricsRegistry()
        metrics.observe("visit_seconds", 1, outcome="ok")
        metrics.observe("visit_seconds", 2, outcome="failed")
        merged = metrics.snapshot().histogram_total("visit_seconds")
        assert merged.count == 2
        assert merged.min == 1 and merged.max == 2
        assert metrics.snapshot().histogram_total("absent") is None

    def test_snapshot_is_detached(self):
        metrics = MetricsRegistry()
        metrics.counter("visits")
        snapshot = metrics.snapshot()
        metrics.counter("visits")
        assert snapshot.counter_value("visits") == 1
        assert metrics.snapshot().counter_value("visits") == 2

    def test_null_metrics_is_inert(self):
        NULL_METRICS.counter("visits")
        NULL_METRICS.gauge("duration", 3)
        NULL_METRICS.observe("seconds", 1)
        snapshot = NULL_METRICS.snapshot()
        assert snapshot.counters == {} and snapshot.gauges == {}
        assert NULL_METRICS.enabled is False
        assert isinstance(NULL_METRICS, NullMetrics)


class TestSnapshotMerge:
    def test_counters_add_and_gauges_keep_max(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("visits", 3, shard="0")
        b.counter("visits", 4, shard="0")
        b.counter("failures", 1)
        a.gauge("duration", 100)
        b.gauge("duration", 250)
        merged = a.snapshot().merge(b.snapshot())
        assert merged.counter_value("visits", shard="0") == 7
        assert merged.counter_value("failures") == 1
        assert merged.gauge_value("duration") == 250

    def test_histograms_merge_bucketwise(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.observe("seconds", 1)
        a.observe("seconds", 100)
        b.observe("seconds", 2)
        merged = a.snapshot().merge(b.snapshot())
        data = merged.histogram("seconds")
        assert data.count == 3
        assert data.min == 1 and data.max == 100
        assert sum(data.bucket_counts) == 3

    def test_mismatched_histogram_bounds_refuse_to_merge(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.observe("seconds", 1, buckets=(1, 2))
        b.observe("seconds", 1, buckets=(5, 10))
        with pytest.raises(ValueError):
            a.snapshot().merge(b.snapshot())

    def test_merge_all_and_absorb_agree(self):
        shards = []
        for index in range(3):
            registry = MetricsRegistry()
            registry.counter("visits", index + 1)
            shards.append(registry.snapshot())
        merged = MetricsSnapshot.merge_all(shards)
        aggregator = MetricsRegistry()
        for snapshot in shards:
            aggregator.absorb(snapshot)
        assert merged.counter_value("visits") == 6
        assert aggregator.snapshot().counters == merged.counters

    def test_json_round_trip(self):
        metrics = MetricsRegistry()
        metrics.counter("visits", 5, phase="before")
        metrics.gauge("duration", 42)
        metrics.observe("seconds", 1.5)
        snapshot = metrics.snapshot()
        restored = MetricsSnapshot.from_json(snapshot.to_json())
        assert restored.counters == snapshot.counters
        assert restored.gauges == snapshot.gauges
        assert restored.histograms == snapshot.histograms

    def test_save_load(self, tmp_path):
        metrics = MetricsRegistry()
        metrics.counter("visits", 2)
        path = tmp_path / "metrics.json"
        metrics.snapshot().save(path)
        assert MetricsSnapshot.load(path).counter_value("visits") == 2


class TestDiffSnapshots:
    def test_equal_snapshots_have_no_divergence(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        for registry in (a, b):
            registry.counter("visits", 3, phase="before")
        assert diff_snapshots(a.snapshot(), b.snapshot()) == []

    def test_divergence_is_reported_per_series(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("visits", 3, phase="before")
        b.counter("visits", 2, phase="before")
        b.counter("probes", 1)
        divergences = diff_snapshots(a.snapshot(), b.snapshot())
        assert {d.series for d in divergences} == {
            'visits{phase="before"}',
            "probes",
        }
        rendered = render_divergences(divergences, "sequential", "sharded")
        assert "2 counter(s) diverge" in rendered

    def test_ignore_prefixes(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("shard_retries", 1)
        divergences = diff_snapshots(
            a.snapshot(), b.snapshot(), ignore_prefixes=("shard_",)
        )
        assert divergences == []

    def test_gauges_and_histograms_excluded(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.gauge("duration", 100)
        b.gauge("duration", 50)
        a.observe("seconds", 1)
        assert diff_snapshots(a.snapshot(), b.snapshot()) == []


class TestMetricsReport:
    def _snapshot(self) -> MetricsSnapshot:
        metrics = MetricsRegistry()
        metrics.counter("browser_visits_total", 80, outcome="ok")
        metrics.counter("browser_visits_total", 20, outcome="failed")
        metrics.counter("topics_calls_total", 50, type="javascript", decision="allowed")
        metrics.counter("crawl_failures_total", 20, kind="dns-resolution-failed")
        metrics.counter("crawl_banners_total", 30, result="accepted")
        metrics.counter("attestation_probes_total", 12, result="attested")
        for value in (1, 1, 2, 2):
            metrics.observe("visit_seconds", value, outcome="ok")
        metrics.gauge("crawl_duration_seconds", 200)
        metrics.gauge("shard_visits", 30, shard=0)
        metrics.gauge("shard_visits", 50, shard=1)
        metrics.gauge("shard_duration_seconds", 90, shard=0)
        metrics.gauge("shard_duration_seconds", 110, shard=1)
        return metrics.snapshot()

    def test_rates_and_breakdowns(self):
        report = build_metrics_report(self._snapshot())
        assert report.visits_total == 100
        assert report.visits_per_second == pytest.approx(0.5)
        assert report.calls_per_second == pytest.approx(0.25)
        assert report.failures_by_kind == {"dns-resolution-failed": 20}
        assert report.probes_by_result == {"attested": 12}
        assert report.shard_visits == {0: 30, 1: 50}

    def test_shard_skew(self):
        report = build_metrics_report(self._snapshot())
        assert report.shard_skew == pytest.approx((50 - 30) / 40)

    def test_skew_undefined_for_single_shard(self):
        metrics = MetricsRegistry()
        metrics.gauge("shard_visits", 10, shard=0)
        assert build_metrics_report(metrics.snapshot()).shard_skew is None

    def test_render_mentions_the_essentials(self):
        rendered = render_metrics_report(build_metrics_report(self._snapshot()))
        assert "visits:" in rendered
        assert "topics calls:" in rendered
        assert "shard skew:" in rendered
        assert "dns-resolution-failed" in rendered

    def test_visit_latency_quantiles(self):
        report = build_metrics_report(self._snapshot())
        assert report.visit_mean == pytest.approx(1.5)
        assert report.visit_p50 is not None
        assert report.visit_p50 <= report.visit_p95 <= report.visit_p99
        rendered = render_metrics_report(report)
        assert "visit latency:" in rendered
        assert "p95=" in rendered

    def test_latency_omitted_without_histogram(self):
        metrics = MetricsRegistry()
        metrics.gauge("crawl_duration_seconds", 10)
        report = build_metrics_report(metrics.snapshot())
        assert report.visit_mean is None
        assert "visit latency" not in render_metrics_report(report)


class TestTraceHealth:
    def test_complete_trace(self):
        from repro.analysis.obs_report import render_trace_health

        tracer = Tracer()
        tracer.emit(EventKind.VISIT_STARTED, at=0)
        assert "complete" in render_trace_health(tracer.meta())

    def test_dropped_events_warn(self):
        from repro.analysis.obs_report import render_trace_health

        tracer = Tracer(capacity=2)
        for index in range(10):
            tracer.emit(EventKind.VISIT_STARTED, at=index)
        rendered = render_trace_health(tracer.meta())
        assert rendered.startswith("WARNING")
        assert "8" in rendered and "80.0%" in rendered

    def test_legacy_trace_is_unknown(self):
        from repro.analysis.obs_report import render_trace_health

        assert "unknown" in render_trace_health(None)


def test_format_series():
    assert format_series("visits", ()) == "visits"
    assert (
        format_series("visits", (("outcome", "ok"), ("phase", "before")))
        == 'visits{outcome="ok",phase="before"}'
    )


def test_format_series_escapes_label_values():
    # Prometheus exposition format: backslash, quote and newline must be
    # escaped inside label values.
    assert (
        format_series("errors", (("msg", 'a "quoted" \\ path\nnext'),))
        == 'errors{msg="a \\"quoted\\" \\\\ path\\nnext"}'
    )


class TestExposition:
    """The Prometheus text exposition: headers, ordering, histograms."""

    @staticmethod
    def _snapshot():
        from repro.obs import MetricsRegistry

        registry = MetricsRegistry()
        registry.counter("topics_calls_total", type="js")
        registry.counter("topics_calls_total", type="header")
        registry.counter("browser_visits_total", outcome="ok")
        registry.gauge("crawl_duration_seconds", 12.5)
        registry.observe("visit_seconds", 1.5)
        registry.observe("visit_seconds", 4.0)
        return registry.snapshot()

    def test_every_family_has_help_and_type_headers(self):
        from repro.obs import render_exposition

        exposition = render_exposition(self._snapshot())
        lines = exposition.splitlines()
        families = (
            ("browser_visits_total", "counter"),
            ("topics_calls_total", "counter"),
            ("crawl_duration_seconds", "gauge"),
            ("visit_seconds", "histogram"),
        )
        for name, kind in families:
            type_line = f"# TYPE {name} {kind}"
            assert type_line in lines
            # HELP immediately precedes TYPE for every family.
            help_line = lines[lines.index(type_line) - 1]
            assert help_line.startswith(f"# HELP {name} ")

    def test_headers_precede_their_samples(self):
        from repro.obs import render_exposition

        lines = render_exposition(self._snapshot()).splitlines()
        type_index = lines.index("# TYPE topics_calls_total counter")
        samples = [
            i for i, line in enumerate(lines)
            if line.startswith("topics_calls_total{")
        ]
        assert samples and min(samples) == type_index + 1
        # Series within the family are label-sorted (deterministic).
        assert lines[samples[0]].startswith('topics_calls_total{type="header"}')

    def test_histogram_expands_cumulative_buckets(self):
        from repro.obs import render_exposition

        exposition = render_exposition(self._snapshot())
        assert 'visit_seconds_bucket{le="2"} 1' in exposition
        assert 'visit_seconds_bucket{le="5"} 2' in exposition
        assert 'visit_seconds_bucket{le="+Inf"} 2' in exposition
        assert "visit_seconds_sum 5.5" in exposition
        assert "visit_seconds_count 2" in exposition

    def test_deterministic_and_newline_terminated(self):
        from repro.obs import render_exposition

        first = render_exposition(self._snapshot())
        assert first == render_exposition(self._snapshot())
        assert first.endswith("\n")

    def test_empty_snapshot_renders_empty(self):
        from repro.obs import MetricsRegistry, render_exposition

        assert render_exposition(MetricsRegistry().snapshot()) == ""
