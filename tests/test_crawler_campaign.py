"""Tests for the full crawl campaign protocol (uses the shared crawl)."""

from repro.crawler.campaign import CrawlCampaign
from repro.crawler.dataset import PHASE_AFTER, PHASE_BEFORE
from repro.web.thirdparty import DISTILLERY_DOMAIN


class TestProtocol:
    def test_every_ok_site_in_dba(self, crawl, world):
        reachable = sum(1 for s in world.websites if s.reachable)
        assert len(crawl.d_ba) == reachable == crawl.report.ok

    def test_failures_counted(self, crawl, world):
        unreachable = sum(1 for s in world.websites if not s.reachable)
        assert crawl.report.failed == unreachable
        assert crawl.report.targets == len(world.websites)

    def test_daa_subset_of_accepted(self, crawl):
        assert len(crawl.d_aa) == crawl.report.accepted
        accepted_domains = {r.domain for r in crawl.d_ba if r.accept_clicked}
        assert {r.domain for r in crawl.d_aa} == accepted_domains

    def test_phases_labelled(self, crawl):
        assert all(r.phase == PHASE_BEFORE for r in crawl.d_ba)
        assert all(r.phase == PHASE_AFTER for r in crawl.d_aa)

    def test_after_accept_only_with_banner(self, crawl):
        assert all(r.banner_present for r in crawl.d_aa)

    def test_ranks_recorded(self, crawl, world):
        for record in list(crawl.d_ba)[:200]:
            assert world.tranco.rank_of(record.domain) == record.rank

    def test_limit(self, world):
        result = CrawlCampaign(world, limit=50).run()
        assert result.report.targets == 50

    def test_progress_callback(self, world):
        seen = []
        CrawlCampaign(
            world, limit=2000, progress=lambda done, total: seen.append(done)
        ).run()
        assert seen == [1000, 2000]

    def test_crawl_duration_paced(self, crawl, world):
        # ~1.5 s per visit; the paper's 50k crawl "ends after about one
        # day".  At our scale the same pacing holds proportionally.
        visits = crawl.report.ok + crawl.report.failed + crawl.report.accepted
        assert 1.0 <= crawl.report.duration_seconds / visits <= 2.0


class TestArtefacts:
    def test_allowed_snapshot(self, crawl, world):
        assert crawl.allowed_domains == world.registry.allowed_domains()

    def test_survey_covers_all_allowed(self, crawl):
        assert all(domain in crawl.survey for domain in crawl.allowed_domains)

    def test_survey_covers_encountered_parties(self, crawl):
        parties = crawl.d_ba.unique_third_parties()
        assert all(domain in crawl.survey for domain in list(parties)[:200])

    def test_distillery_attested_not_allowed(self, crawl):
        assert crawl.survey.is_attested(DISTILLERY_DOMAIN)
        assert DISTILLERY_DOMAIN not in crawl.allowed_domains

    def test_attested_allowed_is_181_of_193(self, crawl, small_config):
        attested_allowed = sum(
            1 for d in crawl.allowed_domains if crawl.survey.is_attested(d)
        )
        assert attested_allowed == small_config.allowed_total - (
            small_config.unattested_allowed
        )


class TestConsentStateAcrossPhases:
    def test_more_third_parties_after_accept(self, crawl):
        # Consent gating means BA visits load strictly fewer ad tags.
        ba_by_domain = {r.domain: r for r in crawl.d_ba}
        wins = ties = losses = 0
        for after in crawl.d_aa:
            before = ba_by_domain[after.domain]
            if len(after.third_parties) > len(before.third_parties):
                wins += 1
            elif len(after.third_parties) == len(before.third_parties):
                ties += 1
            else:
                losses += 1
        assert wins > losses

    def test_cmp_detected_consistently(self, crawl, world):
        for record in list(crawl.d_ba)[:300]:
            site = world.site(record.domain)
            if site.redirect_to is not None:
                continue
            expected = site.cmp_name
            assert record.cmp == expected, record.domain

    def test_determinism(self, world, crawl):
        rerun = CrawlCampaign(world, corrupt_allowlist=True).run()
        assert len(rerun.d_ba) == len(crawl.d_ba)
        assert rerun.d_ba.records[:50] == crawl.d_ba.records[:50]
        assert rerun.report.accepted == crawl.report.accepted
