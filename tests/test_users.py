"""Unit tests for user profiles, populations and browsing traces."""

import pytest

from repro.taxonomy.tree import load_default_taxonomy
from repro.users.browsing import TraceGenerator
from repro.users.population import Population
from repro.users.profile import generate_profile
from repro.util.rng import RngStream


@pytest.fixture(scope="module")
def population() -> Population:
    return Population.generate(20, seed=3)


class TestProfiles:
    def test_stable_per_user(self):
        taxonomy = load_default_taxonomy()
        rng_a = RngStream(5, "population")
        rng_b = RngStream(5, "population")
        assert generate_profile(rng_a, 7, taxonomy) == generate_profile(
            rng_b, 7, taxonomy
        )

    def test_users_differ(self):
        taxonomy = load_default_taxonomy()
        rng = RngStream(5, "population")
        profiles = [generate_profile(rng, uid, taxonomy) for uid in range(10)]
        assert len({p.interests for p in profiles}) > 5

    def test_interest_count_bounds(self, population):
        for profile in population.profiles:
            assert 1 <= len(profile.interests) <= 8

    def test_interests_valid_topics(self, population):
        for profile in population.profiles:
            for topic_id, weight in profile.interests:
                assert topic_id in population.taxonomy
                assert weight > 0

    def test_normalised_sums_to_one(self, population):
        normalised = population.profile(0).normalised()
        assert sum(w for _, w in normalised) == pytest.approx(1.0)

    def test_weight_of(self, population):
        profile = population.profile(0)
        topic, weight = profile.interests[0]
        assert profile.weight_of(topic) == weight
        assert profile.weight_of(-1) == 0.0

    def test_validation(self):
        taxonomy = load_default_taxonomy()
        with pytest.raises(ValueError):
            generate_profile(RngStream(1), 0, taxonomy, interests_min=0)
        with pytest.raises(ValueError):
            Population.generate(0)


class TestPopulation:
    def test_size(self, population):
        assert len(population) == 20

    def test_sites_pinned_to_topics(self, population):
        for node in list(population.taxonomy)[:30]:
            for host in population.sites_for(node.topic_id):
                assert population.classifier.classify(host) == (node.topic_id,)

    def test_sites_per_topic(self, population):
        assert len(population.sites_for(1)) == 3

    def test_deterministic(self):
        a = Population.generate(10, seed=9)
        b = Population.generate(10, seed=9)
        assert [p.interests for p in a.profiles] == [p.interests for p in b.profiles]


class TestTraces:
    def test_history_accumulates_over_epochs(self, population):
        generator = TraceGenerator(population, callers=["obs.example"])
        session = generator.run(0, epochs=3)
        assert set(session.manager.history.epochs()) == {0, 1, 2}

    def test_callers_observe(self, population):
        generator = TraceGenerator(population, callers=["obs.example"])
        session = generator.run(0, epochs=2)
        sites = session.manager.history.eligible_sites(0)
        assert sites
        assert all(
            "obs.example" in session.manager.history.observers_of(0, s)
            for s in sites
        )

    def test_topics_reflect_interests(self, population):
        generator = TraceGenerator(
            population, callers=["obs.example"], noise_probability=0.0
        )
        profile = population.profile(3)
        session = generator.run(3, epochs=4)
        topics = session.topics_for("obs.example", epoch=4)
        assert topics
        interest_set = set(profile.topic_ids)
        # With zero noise and a dominant-interest routine, answers come
        # from the visited (interest) topics or top-5 padding.
        real = [t.topic_id for t in topics if not t.is_noise]
        overlapping = [t for t in real if t in interest_set]
        assert overlapping or not real

    def test_query_does_not_observe(self, population):
        generator = TraceGenerator(population, callers=["obs.example"])
        session = generator.run(0, epochs=1)
        before = session.manager.history.eligible_sites(1)
        session.topics_for("obs.example", epoch=1)
        assert session.manager.history.eligible_sites(1) == before

    def test_partial_coverage_reduces_observations(self, population):
        full = TraceGenerator(population, callers=["obs.example"])
        partial = TraceGenerator(
            population, callers=["obs.example"], caller_coverage=0.2
        )
        full_count = full.run(1, epochs=2).manager.call_count
        partial_count = partial.run(1, epochs=2).manager.call_count
        assert partial_count < full_count

    def test_validation(self, population):
        with pytest.raises(ValueError):
            TraceGenerator(population, callers=[])
        with pytest.raises(ValueError):
            TraceGenerator(population, callers=["a.com"], visits_per_epoch=0)
