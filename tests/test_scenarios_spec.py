"""Scenario spec parsing: TOML loading, validation, round-tripping."""

import pytest

from repro.scenarios.spec import (
    SCENARIOS_DIR,
    ScenarioSpec,
    ScenarioSpecError,
    declared_scenarios,
    load_spec,
    parse_toml_minimal,
    resolve_spec,
)

try:
    import tomllib
except ModuleNotFoundError:  # pragma: no cover - py3.10
    tomllib = None


def minimal_raw(**overrides) -> dict:
    raw = {
        "name": "t",
        "world": {"sites": 400, "seed": 3},
        "axes": [
            {
                "name": "vantage",
                "values": [
                    {"name": "eu", "vantage": "eu"},
                    {"name": "us", "vantage": "us"},
                ],
            }
        ],
        "baseline": {"vantage": "eu"},
    }
    raw.update(overrides)
    return raw


class TestFromDict:
    def test_minimal_spec_parses(self):
        spec = ScenarioSpec.from_dict(minimal_raw())
        assert spec.name == "t"
        assert spec.world_dict() == {"sites": 400, "seed": 3}
        assert spec.axis("vantage").value_names == ("eu", "us")
        assert spec.baseline == (("vantage", "eu"),)

    def test_missing_name_rejected(self):
        with pytest.raises(ScenarioSpecError, match="name"):
            ScenarioSpec.from_dict({"world": {}})

    def test_unknown_section_rejected(self):
        with pytest.raises(ScenarioSpecError, match="unknown section"):
            ScenarioSpec.from_dict(minimal_raw(surprise={}))

    def test_unknown_world_field_rejected(self):
        with pytest.raises(ScenarioSpecError, match="world.not_a_field"):
            ScenarioSpec.from_dict(minimal_raw(world={"not_a_field": 1}))

    def test_unknown_vantage_rejected(self):
        raw = minimal_raw()
        raw["axes"][0]["values"][0]["vantage"] = "mars"
        with pytest.raises(ScenarioSpecError, match="vantage"):
            ScenarioSpec.from_dict(raw)

    def test_bad_allowlist_mode_rejected(self):
        raw = minimal_raw()
        raw["axes"][0]["values"][0]["allowlist"] = "pristine"
        with pytest.raises(ScenarioSpecError, match="allowlist"):
            ScenarioSpec.from_dict(raw)

    def test_bad_snapshot_date_rejected(self):
        raw = minimal_raw()
        raw["axes"][0]["values"][0]["snapshot"] = "March 2024"
        with pytest.raises(ScenarioSpecError, match="ISO date"):
            ScenarioSpec.from_dict(raw)

    def test_duplicate_axis_rejected(self):
        raw = minimal_raw()
        raw["axes"].append(raw["axes"][0])
        with pytest.raises(ScenarioSpecError, match="duplicate axis"):
            ScenarioSpec.from_dict(raw)

    def test_duplicate_value_rejected(self):
        raw = minimal_raw()
        raw["axes"][0]["values"].append({"name": "eu"})
        with pytest.raises(ScenarioSpecError, match="duplicate value"):
            ScenarioSpec.from_dict(raw)

    def test_baseline_unknown_axis_rejected(self):
        with pytest.raises(ScenarioSpecError, match="unknown axis"):
            ScenarioSpec.from_dict(minimal_raw(baseline={"nope": "eu"}))

    def test_baseline_unknown_value_rejected(self):
        with pytest.raises(ScenarioSpecError, match="no value"):
            ScenarioSpec.from_dict(minimal_raw(baseline={"vantage": "jp"}))

    def test_assertion_unknown_metric_rejected(self):
        raw = minimal_raw(
            assertions=[
                {"kind": "monotonic", "metric": "nope", "axis": "vantage"}
            ]
        )
        with pytest.raises(ScenarioSpecError, match="unknown metric"):
            ScenarioSpec.from_dict(raw)

    def test_assertion_bad_direction_rejected(self):
        raw = minimal_raw(
            assertions=[
                {
                    "kind": "monotonic",
                    "metric": "banner_rate",
                    "axis": "vantage",
                    "direction": "sideways",
                }
            ]
        )
        with pytest.raises(ScenarioSpecError, match="direction"):
            ScenarioSpec.from_dict(raw)

    def test_bound_without_bounds_rejected(self):
        raw = minimal_raw(
            assertions=[
                {
                    "kind": "bound",
                    "metric": "banner_rate",
                    "where": {"vantage": "eu"},
                }
            ]
        )
        with pytest.raises(ScenarioSpecError, match="'min', 'max' or 'equals'"):
            ScenarioSpec.from_dict(raw)

    def test_with_world_overrides(self):
        spec = ScenarioSpec.from_dict(minimal_raw())
        smaller = spec.with_world_overrides({"sites": 100})
        assert smaller.world_dict() == {"sites": 100, "seed": 3}
        assert spec.world_dict()["sites"] == 400  # original untouched
        with pytest.raises(ScenarioSpecError, match="unknown WorldConfig"):
            spec.with_world_overrides({"nope": 1})


class TestDeclaredScenarios:
    def test_expected_specs_are_declared(self):
        declared = declared_scenarios()
        for name in (
            "ci_smoke",
            "vantage",
            "longitudinal",
            "ablation_allowlist",
            "ablation_consent",
            "ablation_context",
        ):
            assert name in declared

    @pytest.mark.parametrize("name", declared_scenarios())
    def test_every_declared_spec_round_trips(self, name):
        spec = resolve_spec(name)
        rebuilt = ScenarioSpec.from_dict(spec.to_dict())
        assert rebuilt == spec
        assert rebuilt.digest() == spec.digest()

    def test_resolve_by_path(self, tmp_path):
        path = tmp_path / "mine.toml"
        path.write_text('name = "mine"\n[world]\nsites = 200\n')
        assert resolve_spec(str(path)).name == "mine"

    def test_resolve_unknown_name_errors(self):
        with pytest.raises(ScenarioSpecError, match="declared"):
            resolve_spec("definitely_not_a_scenario")


class TestTomlFallback:
    @pytest.mark.skipif(tomllib is None, reason="needs stdlib tomllib")
    @pytest.mark.parametrize("name", declared_scenarios())
    def test_fallback_parser_matches_tomllib(self, name):
        text = (SCENARIOS_DIR / f"{name}.toml").read_text(encoding="utf-8")
        assert parse_toml_minimal(text) == tomllib.loads(text)

    def test_fallback_parses_the_subset(self):
        parsed = parse_toml_minimal(
            "\n".join(
                [
                    'name = "x"  # trailing comment',
                    "flag = true",
                    "rate = 0.5",
                    'tags = ["a", "b"]',
                    "[world]",
                    "sites = 100",
                    "[[axes]]",
                    'name = "vantage"',
                    "[[axes.values]]",
                    'name = "eu"',
                    'where.vantage = "eu"',
                ]
            )
        )
        assert parsed["name"] == "x"
        assert parsed["flag"] is True
        assert parsed["rate"] == 0.5
        assert parsed["tags"] == ["a", "b"]
        assert parsed["world"] == {"sites": 100}
        assert parsed["axes"][0]["values"][0] == {
            "name": "eu",
            "where": {"vantage": "eu"},
        }

    def test_fallback_rejects_unsupported_values(self):
        with pytest.raises(ScenarioSpecError, match="unsupported value"):
            parse_toml_minimal("when = 2024-03-30T00:00:00Z")

    def test_load_spec_from_file(self, tmp_path):
        path = tmp_path / "s.toml"
        path.write_text('name = "s"\n[world]\nsites = 300\nseed = 2\n')
        spec = load_spec(path)
        assert spec.world_dict() == {"sites": 300, "seed": 2}
