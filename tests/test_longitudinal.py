"""Tests for the longitudinal adoption model and monitor."""

import pytest

from repro.attestation.registry import FIRST_ENROLLMENT_AT
from repro.longitudinal.evolution import AdoptionModel, registry_at, world_at
from repro.longitudinal.monitor import LongitudinalMonitor, render_trend
from repro.util.timeline import timestamp_from_date

_MONTH = 30 * 24 * 3600


class TestAdoptionModel:
    def test_zero_before_activation(self):
        model = AdoptionModel(activation_lag_months=2, ramp_months=6)
        assert model.rate_factor(0, int(1.9 * _MONTH)) == 0.0

    def test_ramps_linearly(self):
        model = AdoptionModel(activation_lag_months=0, ramp_months=4)
        assert model.rate_factor(0, 2 * _MONTH) == pytest.approx(0.5)

    def test_saturates_at_one(self):
        model = AdoptionModel(activation_lag_months=0, ramp_months=4)
        assert model.rate_factor(0, 100 * _MONTH) == 1.0

    def test_instant_ramp(self):
        model = AdoptionModel(activation_lag_months=0, ramp_months=0)
        assert model.rate_factor(0, 1) == 1.0


class TestRegistryAt:
    def test_early_registry_smaller(self, world):
        early = registry_at(world.registry, FIRST_ENROLLMENT_AT + 3 * _MONTH)
        assert 0 < len(early.allowed_domains()) < len(
            world.registry.allowed_domains()
        )

    def test_late_registry_complete(self, world):
        late = registry_at(world.registry, timestamp_from_date(2025, 1, 1))
        assert late.allowed_domains() == world.registry.allowed_domains()

    def test_before_first_enrollment_empty(self, world):
        pre = registry_at(world.registry, FIRST_ENROLLMENT_AT - 1)
        assert len(pre.allowed_domains()) == 0


class TestWorldAt:
    def test_structure_preserved(self, world):
        dated = world_at(world, timestamp_from_date(2023, 12, 1))
        assert dated.websites is world.websites
        assert dated.tranco is world.tranco

    def test_rates_scaled_down_early(self, world):
        dated = world_at(world, timestamp_from_date(2023, 10, 1))
        base = world.policy_of("doubleclick.net")
        scaled = dated.policy_of("doubleclick.net")
        assert scaled is not None
        assert scaled.enabled_rate <= base.enabled_rate

    def test_rates_full_late(self, world):
        dated = world_at(world, timestamp_from_date(2026, 1, 1))
        for domain in ("doubleclick.net", "criteo.com", "taboola.com"):
            assert dated.policy_of(domain).enabled_rate == pytest.approx(
                world.policy_of(domain).enabled_rate
            )

    def test_unenrolled_services_untouched(self, world):
        dated = world_at(world, timestamp_from_date(2023, 8, 1))
        assert dated.third_parties["googletagmanager.com"] is (
            world.third_parties["googletagmanager.com"]
        )


class TestMonitor:
    @pytest.fixture(scope="class")
    def snapshots(self, world):
        monitor = LongitudinalMonitor(world, limit=1_500)
        dates = [
            timestamp_from_date(2023, 9, 1),
            timestamp_from_date(2024, 3, 30),
            timestamp_from_date(2024, 12, 1),
        ]
        return monitor.run(dates)

    def test_allowed_grows(self, snapshots):
        allowed = [snap.allowed for snap in snapshots]
        assert allowed == sorted(allowed)
        assert allowed[0] < allowed[-1]

    def test_active_cps_grow(self, snapshots):
        active = [snap.active_cps for snap in snapshots]
        assert active[0] < active[-1]

    def test_call_share_grows(self, snapshots):
        shares = [snap.sites_with_call_share for snap in snapshots]
        assert shares[0] < shares[-1]

    def test_anomalous_calls_time_independent(self, snapshots):
        # Rogue GTM calls are a deployment accident, not adoption: the
        # count does not track the enrolment timeline.
        counts = {snap.anomalous_cps for snap in snapshots}
        assert len(counts) == 1

    def test_render(self, snapshots):
        text = render_trend(snapshots)
        assert "2023-09-01" in text and "active" in text
