"""Tests for sharded crawling: partitioning, determinism, merge fidelity."""

import pytest

from repro.crawler.parallel import ShardedCrawl, plan_shards
from repro.web.tranco import TrancoList


class TestPlanning:
    def test_partition_covers_everything_once(self):
        ranking = TrancoList.of([f"s{i}.com" for i in range(10)])
        plans = plan_shards(ranking, 3)
        covered = [d for plan in plans for d in plan.domains]
        assert covered == list(ranking.domains)

    def test_sizes_balanced(self):
        ranking = TrancoList.of([f"s{i}.com" for i in range(10)])
        sizes = [len(p.domains) for p in plan_shards(ranking, 3)]
        assert sizes == [4, 3, 3]

    def test_rank_offsets(self):
        ranking = TrancoList.of([f"s{i}.com" for i in range(10)])
        plans = plan_shards(ranking, 3)
        assert [p.rank_offset for p in plans] == [0, 4, 7]

    def test_more_shards_than_domains(self):
        ranking = TrancoList.of(["a.com", "b.com"])
        plans = plan_shards(ranking, 5)
        assert len(plans) == 2

    def test_invalid_count(self):
        with pytest.raises(ValueError):
            plan_shards(TrancoList.of(["a.com"]), 0)


class TestShardedCrawl:
    @pytest.fixture(scope="class")
    def sharded(self, world):
        return ShardedCrawl(world, shard_count=4).run()

    def test_full_coverage(self, sharded, world):
        reachable = sum(1 for s in world.websites if s.reachable)
        assert sharded.report.ok == reachable
        assert len(sharded.d_ba) == reachable
        assert sharded.report.targets == len(world.websites)

    def test_global_ranks_restored(self, sharded, world):
        for record in list(sharded.d_ba)[::200]:
            assert world.tranco.rank_of(record.domain) == record.rank

    def test_deterministic_across_runs(self, sharded, world):
        rerun = ShardedCrawl(world, shard_count=4).run()
        assert rerun.d_ba.records == sharded.d_ba.records
        assert rerun.d_aa.records == sharded.d_aa.records

    def test_deterministic_with_different_worker_counts(self, sharded, world):
        serial = ShardedCrawl(world, shard_count=4, max_workers=1).run()
        assert serial.d_ba.records == sharded.d_ba.records

    def test_matches_sequential_structure(self, sharded, crawl):
        # Shards use distinct browser profiles (different user seeds and
        # clocks), so timestamps and per-user noise differ from the
        # sequential campaign — but presence structure must be identical.
        assert {r.domain for r in sharded.d_ba} == {r.domain for r in crawl.d_ba}
        assert {r.domain for r in sharded.d_aa} == {r.domain for r in crawl.d_aa}
        ba_by_domain = {r.domain: r for r in crawl.d_ba}
        for record in list(sharded.d_ba)[::97]:
            assert record.third_parties == ba_by_domain[record.domain].third_parties

    def test_analysis_equivalence(self, sharded, crawl, study):
        from repro.analysis.classify import build_table1

        table = build_table1(
            sharded.d_ba, sharded.d_aa, sharded.allowed_domains, sharded.survey
        )
        assert table.allowed_total == study.table1.allowed_total
        assert table.aa_allowed_attested == study.table1.aa_allowed_attested
        # A/B enablement is (caller, site)-stable, independent of profile.
        assert table.aa_not_allowed == study.table1.aa_not_allowed

    def test_survey_present(self, sharded):
        assert len(sharded.survey) > 0
        assert all(d in sharded.survey for d in sharded.allowed_domains)

    def test_survey_matches_sequential(self, sharded, crawl):
        # The merge builds its survey from the same attestation_targets
        # helper as the sequential campaign: probe-identical surveys.
        seq_domains = set(crawl.survey._by_domain)
        sh_domains = set(sharded.survey._by_domain)
        assert seq_domains == sh_domains
        for domain in seq_domains:
            assert sharded.survey.probe(domain) == crawl.survey.probe(domain)

    def test_failure_breakdown_merged(self, sharded, crawl):
        assert sharded.report.failure_kinds == crawl.report.failure_kinds
        assert sum(sharded.report.failure_kinds.values()) == sharded.report.failed
        assert sharded.report.retried == crawl.report.retried
        assert sharded.report.recovered == crawl.report.recovered

    def test_merged_report_timing_is_honest(self, sharded):
        report = sharded.report
        assert report.started_at == 0
        assert report.finished_at > 0
        assert report.duration_seconds == report.finished_at - report.started_at
