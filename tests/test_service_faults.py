"""Fault-injection sweep for the crawl service.

The acceptance bar, one level above the resumable crawl's: a *service*
killed mid-campaign and restarted must finish its jobs with archives
**byte-identical** to an uninterrupted batch run — on every execution
backend.  Alongside the kill drill: cancellation stops shards with
durable checkpoints and a clean job record, and slow or disconnecting
subscribers exercise both backpressure policies with any loss surfaced
as a count, never silently.
"""

from __future__ import annotations

import asyncio
from pathlib import Path

import pytest

from repro.crawler.archive import save_crawl
from repro.crawler.checkpoint import CheckpointStore
from repro.crawler.resumable import ResumableCrawl
from repro.service import (
    CrawlService,
    EVENT_JOB_CANCELLED,
    EVENT_JOB_DONE,
    EVENT_JOB_STARTED,
    EVENT_SHARD_PROGRESS,
    FaultSpec,
    JobSpec,
    JobState,
    JobTable,
)
from repro.web.config import WorldConfig
from repro.web.generator import WebGenerator

SITES = 120
SEED = 3
SHARDS = 3
EVERY = 10  # checkpoint cadence: small so kills always leave a prefix

BACKENDS = ("serial", "thread", "process")


@pytest.fixture(scope="module")
def batch_archive(tmp_path_factory) -> Path:
    """The uninterrupted batch campaign every service run must match."""
    world = WebGenerator(WorldConfig.small(SITES, seed=SEED)).generate()
    root = tmp_path_factory.mktemp("batch")
    outcome = ResumableCrawl(
        world,
        root / "checkpoints",
        shard_count=SHARDS,
        checkpoint_every=EVERY,
        backend="serial",
    ).run()
    return save_crawl(outcome.result, root / "archive")


def assert_archives_identical(actual: Path, expected: Path) -> None:
    actual_files = sorted(p.name for p in Path(actual).iterdir())
    expected_files = sorted(p.name for p in Path(expected).iterdir())
    assert actual_files == expected_files
    for name in actual_files:
        assert (Path(actual) / name).read_bytes() == (
            Path(expected) / name
        ).read_bytes(), f"archive file {name} differs"


async def drain_until_terminal(service: CrawlService, job_id: str, **subscribe):
    """All of a job's events, consumed live until the terminal one."""
    replay, sub = service.subscribe(job_id, **subscribe)
    events = list(replay)
    try:
        while not (events and events[-1].terminal):
            events.append(await sub.get())
    finally:
        service.unsubscribe(sub)
    return events


class TestKillAndRestart:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_restart_resumes_to_identical_archive(
        self, backend, batch_archive, tmp_path
    ):
        """Kill the service mid-campaign; a restarted service must resume
        the job and archive byte-identically to the uninterrupted run."""
        data = tmp_path / "svc"
        # Crash shard 1 at visit 15 on every attempt it gets, then
        # escalate to a simulated SIGKILL of the service itself.
        fault = FaultSpec(
            shard_index=1,
            points=((1, 15), (2, 15)),
            kill_service=True,
        )
        spec = JobSpec(
            sites=SITES,
            seed=SEED,
            shards=SHARDS,
            checkpoint_every=EVERY,
            max_shard_retries=1,
            backend=backend,
            fault=fault,
        )

        async def killed_run() -> str:
            service = CrawlService(data)
            await service.start()
            job_id = await service.submit(spec)
            record = await service.wait(job_id)
            assert service.killed
            # The "dead" process never touched the durable record: it
            # still says running — the restart marker.
            assert record.state is JobState.RUNNING
            return job_id

        job_id = asyncio.run(killed_run())
        on_disk = JobTable(data / "jobs").load(job_id)
        assert on_disk.state is JobState.RUNNING
        # One-shot faults never persist: the restarted service must not
        # re-crash on the same schedule.
        assert on_disk.spec.fault is None

        async def restarted_run():
            service = CrawlService(data)
            revived = await service.start()
            assert job_id in revived
            record = await service.wait(job_id)
            events = await drain_until_terminal(service, job_id)
            await service.close()
            return record, events

        record, events = asyncio.run(restarted_run())
        assert record.state is JobState.DONE
        assert record.resumed == 1
        started = [e for e in events if e.kind == EVENT_JOB_STARTED]
        assert started and started[0].payload["resumed"] == 1
        assert events[-1].kind == EVENT_JOB_DONE
        assert_archives_identical(Path(record.archive_dir), batch_archive)

    def test_fresh_jobs_unaffected_by_fault_spec_on_other_job(
        self, batch_archive, tmp_path
    ):
        """A faulted job's crash schedule must not leak into siblings."""
        data = tmp_path / "svc"

        async def run():
            service = CrawlService(data, max_jobs=1)
            await service.start()
            clean = await service.submit(
                JobSpec(
                    sites=SITES,
                    seed=SEED,
                    shards=SHARDS,
                    checkpoint_every=EVERY,
                    backend="serial",
                )
            )
            record = await service.wait(clean)
            await service.close()
            return record

        record = asyncio.run(run())
        assert record.state is JobState.DONE
        assert_archives_identical(Path(record.archive_dir), batch_archive)


class TestCancellation:
    def test_cancel_mid_shard_leaves_durable_checkpoints(self, tmp_path):
        data = tmp_path / "svc"

        async def run():
            service = CrawlService(data, backend="serial")
            await service.start()
            job_id = await service.submit(
                JobSpec(
                    sites=240,
                    seed=5,
                    shards=2,
                    checkpoint_every=EVERY,
                    progress_every=10,
                )
            )
            _, sub = service.subscribe(job_id)
            # Let the campaign make real progress before pulling the plug.
            while True:
                event = await sub.get()
                if event.kind == EVENT_SHARD_PROGRESS:
                    break
            await service.cancel(job_id)
            events = [event]
            while not events[-1].terminal:
                events.append(await sub.get())
            service.unsubscribe(sub)
            record = await service.wait(job_id)
            await service.close()
            return record, events

        record, events = asyncio.run(run())
        assert record.state is JobState.CANCELLED
        assert record.archive_dir is None
        assert events[-1].kind == EVENT_JOB_CANCELLED
        # The shards stopped, but their durable progress survived: the
        # checkpoint store reopens cleanly with a consistent manifest.
        store = CheckpointStore(data / "jobs" / record.job_id / "checkpoints")
        shards = store.shards()
        assert shards, "cancelled campaign left no checkpoints"
        latest = store.latest(shards[0])
        assert latest is not None and latest.visits_done > 0
        # And the durable record agrees with the in-memory one.
        assert JobTable(data / "jobs").load(record.job_id).state is (
            JobState.CANCELLED
        )

    def test_cancel_while_queued_never_runs(self, tmp_path):
        data = tmp_path / "svc"

        async def run():
            service = CrawlService(data, max_jobs=1, backend="serial")
            await service.start()
            first = await service.submit(
                JobSpec(sites=SITES, seed=SEED, shards=2, checkpoint_every=EVERY)
            )
            second = await service.submit(
                JobSpec(sites=SITES, seed=SEED, shards=2, checkpoint_every=EVERY)
            )
            cancelled = await service.cancel(second)
            assert cancelled.state is JobState.CANCELLED
            first_record = await service.wait(first)
            second_record = await service.wait(second)
            await service.close()
            return first_record, second_record

        first_record, second_record = asyncio.run(run())
        assert first_record.state is JobState.DONE
        assert second_record.state is JobState.CANCELLED
        # The cancelled job never started: no checkpoint directory.
        assert not (
            data / "jobs" / second_record.job_id / "checkpoints"
        ).exists()


class TestBackpressure:
    def test_slow_blocking_subscriber_loses_nothing(self, tmp_path):
        """``block`` policy: a tiny queue and a slow consumer stall the
        service instead of losing events — completeness over latency."""

        async def run():
            service = CrawlService(tmp_path / "svc", backend="serial")
            await service.start()
            job_id = await service.submit(
                JobSpec(
                    sites=SITES,
                    seed=SEED,
                    shards=2,
                    checkpoint_every=EVERY,
                    progress_every=5,
                )
            )
            replay, sub = service.subscribe(job_id, policy="block", maxsize=1)
            events = list(replay)
            while not (events and events[-1].terminal):
                events.append(await sub.get())
                await asyncio.sleep(0.002)  # deliberately slow consumer
            service.unsubscribe(sub)
            await service.wait(job_id)
            await service.close()
            return events, sub

        events, sub = asyncio.run(run())
        assert sub.dropped == 0
        assert [event.seq for event in events] == list(
            range(1, len(events) + 1)
        ), "blocking subscriber saw a gap or duplicate"
        assert events[-1].kind == EVENT_JOB_DONE
        assert sum(1 for e in events if e.kind == EVENT_SHARD_PROGRESS) > 0

    def test_drop_policy_surfaces_loss_counts(self, tmp_path):
        """``drop`` policy: a consumer that never reads loses events, and
        the loss is counted — on the subscription and in the metrics."""

        async def run():
            service = CrawlService(tmp_path / "svc", backend="serial")
            await service.start()
            job_id = await service.submit(
                JobSpec(
                    sites=SITES,
                    seed=SEED,
                    shards=2,
                    checkpoint_every=EVERY,
                    progress_every=5,
                )
            )
            _, sub = service.subscribe(job_id, policy="drop", maxsize=1)
            await service.wait(job_id)  # never consume while it runs
            exposition = service.exposition()
            total_events = len(service.history(job_id))
            service.unsubscribe(sub)
            await service.close()
            return sub, exposition, total_events

        sub, exposition, total_events = asyncio.run(run())
        assert sub.dropped > 0
        # Nothing vanished from the record of what happened...
        assert total_events > sub.dropped
        # ...and the loss is visible in the service's own metrics.
        assert "service_events_dropped_total" in exposition
        for line in exposition.splitlines():
            if line.startswith("service_events_dropped_total"):
                assert float(line.split()[-1]) >= sub.dropped

    def test_disconnecting_blocking_subscriber_unblocks_the_job(
        self, tmp_path
    ):
        """Closing a ``block`` subscription mid-stream frees any publisher
        parked on its full queue; the job still completes."""

        async def run():
            service = CrawlService(tmp_path / "svc", backend="serial")
            await service.start()
            job_id = await service.submit(
                JobSpec(
                    sites=SITES,
                    seed=SEED,
                    shards=2,
                    checkpoint_every=EVERY,
                    progress_every=5,
                )
            )
            _, sub = service.subscribe(job_id, policy="block", maxsize=1)
            for _ in range(3):
                await sub.get()
            service.unsubscribe(sub)  # consumer walks away
            record = await service.wait(job_id)
            await service.close()
            return record

        record = asyncio.run(run())
        assert record.state is JobState.DONE
