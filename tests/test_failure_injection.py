"""Failure injection: malformed inputs must fail loudly, not corrupt state."""

import json

import pytest

from repro.attestation.allowlist import (
    AllowList,
    AllowListCorruptError,
    AllowListDatabase,
    parse_allowlist,
)
from repro.attestation.wellknown import (
    AttestationValidationError,
    validate_attestation_json,
)
from repro.crawler.archive import load_crawl, save_crawl
from repro.crawler.dataset import Dataset, VisitRecord
from repro.web.tranco import TrancoList


class TestDatasetCorruption:
    def test_truncated_jsonl_line(self, tmp_path, crawl):
        path = tmp_path / "d.jsonl"
        crawl.d_ba.to_jsonl(path)
        content = path.read_text()
        path.write_text(content[: len(content) - 40])  # cut mid-record
        with pytest.raises(json.JSONDecodeError):
            Dataset.from_jsonl("D_BA", path)

    def test_missing_field(self, tmp_path):
        path = tmp_path / "d.jsonl"
        path.write_text('{"rank": 1, "domain": "a.com"}\n')
        with pytest.raises((TypeError, KeyError)):
            Dataset.from_jsonl("D_BA", path)

    def test_garbage_call_record(self):
        record_json = json.dumps(
            {
                "rank": 1,
                "domain": "a.com",
                "final_domain": "a.com",
                "url": "https://www.a.com/",
                "final_url": "https://www.a.com/",
                "phase": "before-accept",
                "banner_present": False,
                "banner_language": None,
                "accept_clicked": False,
                "cmp": None,
                "third_parties": [],
                "calls": [{"not": "a call"}],
            }
        )
        with pytest.raises(TypeError):
            VisitRecord.from_json(record_json)


class TestArchiveCorruption:
    def test_partial_archive_detected(self, tmp_path, crawl):
        directory = save_crawl(crawl, tmp_path / "campaign")
        (directory / "attestation_survey.jsonl").unlink()
        with pytest.raises(FileNotFoundError):
            load_crawl(directory)

    def test_corrupted_report_json(self, tmp_path, crawl):
        directory = save_crawl(crawl, tmp_path / "campaign")
        (directory / "report.json").write_text("{broken")
        with pytest.raises(json.JSONDecodeError):
            load_crawl(directory)


class TestAllowlistCorruptionModes:
    @pytest.fixture
    def payload(self) -> str:
        return AllowList.of(["a.com", "b.net", "c.org"]).serialize()

    @pytest.mark.parametrize(
        "mutate",
        [
            lambda p: "",  # empty file
            lambda p: p.replace("PSAT", "TSAP"),  # flipped magic
            lambda p: p + "trailing.com\n",  # count mismatch
            lambda p: p.replace("a.com", "A com"),  # malformed entry
            lambda p: p.replace("sum=", "sum=dead"),  # broken checksum field
            lambda p: "\x00" + p,  # binary garbage prefix
        ],
    )
    def test_all_corruptions_detected(self, payload, mutate):
        with pytest.raises(AllowListCorruptError):
            parse_allowlist(mutate(payload))

    def test_corrupt_database_still_serves_decisions(self, payload):
        # The Chromium bug: corruption must not crash the browser — it
        # silently default-allows, which is exactly the paper's finding.
        database = AllowListDatabase()
        database.update("\x00garbage")
        decision = database.check_caller("anyone.example")
        assert decision.allowed


class TestAttestationCorruptionModes:
    @pytest.mark.parametrize(
        "payload",
        [
            "",  # empty body (404-ish)
            "<html>Not Found</html>",
            "null",
            '{"attestation_parser_version": "2", "attestations": "no"}',
            '{"attestation_parser_version": "2", "attestations": [{}]}',
            json.dumps(
                {
                    "attestation_parser_version": "2",
                    "attestations": [
                        {"attestation_group_1": {"platform_attestations": []}}
                    ],
                }
            ),
        ],
    )
    def test_invalid_payloads_rejected(self, payload):
        with pytest.raises(AttestationValidationError):
            validate_attestation_json("x.com", payload)


class TestTrancoCorruption:
    @pytest.mark.parametrize(
        "content",
        [
            "0,a.com\n",  # rank starts at 0
            "1,a.com\n1,b.com\n",  # duplicate rank
            "2,a.com\n",  # gap at the start
            "1;a.com\n",  # wrong separator leaves no domain
        ],
    )
    def test_malformed_csv_rejected(self, tmp_path, content):
        path = tmp_path / "list.csv"
        path.write_text(content)
        with pytest.raises(ValueError):
            TrancoList.from_csv(path)
