"""Sweep-level audit: the six rules over pristine and defective sweeps."""

import json

import pytest

from repro.scenarios.engine import run_sweep
from repro.scenarios.spec import ScenarioSpec
from repro.validate import SWEEP_RULES, audit_sweep
from repro.validate.engine import STATUS_OK, render_audit


def small_spec() -> ScenarioSpec:
    return ScenarioSpec.from_dict(
        {
            "name": "audit-me",
            "world": {"sites": 300, "seed": 5},
            "axes": [
                {
                    "name": "allowlist",
                    "values": [
                        {"name": "corrupted", "allowlist": "corrupted"},
                        {"name": "healthy", "allowlist": "healthy"},
                    ],
                }
            ],
            "baseline": {"allowlist": "corrupted"},
        }
    )


@pytest.fixture(scope="module")
def sweep_dir(tmp_path_factory):
    out = tmp_path_factory.mktemp("sweep-audit") / "sweep"
    run_sweep(small_spec(), out, backend="serial")
    return out


def outcome_of(audit, rule: str):
    for outcome in audit.outcomes:
        if outcome.rule == rule:
            return outcome
    raise AssertionError(f"no outcome for rule {rule!r}")


def manifest_of(sweep_dir) -> dict:
    return json.loads((sweep_dir / "sweep.json").read_text())


def rewrite_manifest(sweep_dir, manifest: dict) -> None:
    (sweep_dir / "sweep.json").write_text(json.dumps(manifest))


class TestPristineSweep:
    def test_all_rules_pass(self, sweep_dir):
        audit = audit_sweep(sweep_dir)
        assert audit.ok
        assert audit.artifacts_available == ("sweep-manifest",)
        assert {outcome.rule for outcome in audit.outcomes} == {
            name for name, _ in SWEEP_RULES
        }
        assert all(
            outcome.status == STATUS_OK for outcome in audit.outcomes
        )

    def test_render_audit_names_the_rules(self, sweep_dir):
        text = render_audit(audit_sweep(sweep_dir))
        for name, _ in SWEEP_RULES:
            assert name in text
        assert "PASS" in text


class TestDefectiveSweeps:
    def test_missing_manifest(self, sweep_dir, tmp_path):
        audit = audit_sweep(tmp_path / "nowhere")
        assert not audit.ok
        assert audit.artifacts_available == ()
        bad = outcome_of(audit, "sweep-manifest-readable")
        assert bad.status != STATUS_OK
        # Downstream rules can't run without a manifest; they stay OK
        # (no violations) rather than inventing phantom failures.
        assert outcome_of(audit, "sweep-cell-partition").status == STATUS_OK

    def test_corrupt_manifest_json(self, sweep_dir, tmp_path):
        out = tmp_path / "sweep"
        out.mkdir()
        (out / "sweep.json").write_text("{torn")
        audit = audit_sweep(out)
        bad = outcome_of(audit, "sweep-manifest-readable")
        assert bad.status != STATUS_OK

    def test_spec_digest_mismatch(self, sweep_dir, tmp_path):
        manifest = manifest_of(sweep_dir)
        manifest["spec_digest"] = "0" * 16
        out = _copy_sweep(sweep_dir, tmp_path / "tampered")
        rewrite_manifest(out, manifest)
        audit = audit_sweep(out)
        bad = outcome_of(audit, "sweep-manifest-readable")
        assert bad.status != STATUS_OK
        assert any(
            "spec_digest" in violation.message
            for violation in bad.violations
        )

    def test_dropped_cell_breaks_partition(self, sweep_dir, tmp_path):
        manifest = manifest_of(sweep_dir)
        dropped = manifest["cells"].pop(0)
        out = _copy_sweep(sweep_dir, tmp_path / "tampered")
        rewrite_manifest(out, manifest)
        audit = audit_sweep(out)
        bad = outcome_of(audit, "sweep-cell-partition")
        assert bad.status != STATUS_OK
        assert any(
            dropped["cell_id"] in violation.message
            for violation in bad.violations
        )

    def test_foreign_baseline_rejected(self, sweep_dir, tmp_path):
        manifest = manifest_of(sweep_dir)
        manifest["baseline"] = "allowlist=imaginary"
        out = _copy_sweep(sweep_dir, tmp_path / "tampered")
        rewrite_manifest(out, manifest)
        audit = audit_sweep(out)
        assert outcome_of(audit, "sweep-baseline-cell").status != STATUS_OK

    def test_unreproducible_fingerprint(self, sweep_dir, tmp_path):
        manifest = manifest_of(sweep_dir)
        manifest["cells"][0]["fingerprint"] = "f" * 16
        out = _copy_sweep(sweep_dir, tmp_path / "tampered")
        rewrite_manifest(out, manifest)
        audit = audit_sweep(out)
        assert (
            outcome_of(audit, "sweep-fingerprint-unique").status != STATUS_OK
        )

    def test_tampered_archive_bytes(self, sweep_dir, tmp_path):
        out = _copy_sweep(sweep_dir, tmp_path / "tampered")
        cell_id = manifest_of(out)["cells"][0]["cell_id"]
        victim = out / "cells" / cell_id / "d_aa.jsonl"
        victim.write_text(victim.read_text() + "\n")
        audit = audit_sweep(out)
        assert (
            outcome_of(audit, "sweep-archive-integrity").status != STATUS_OK
        )

    def test_missing_archive_file(self, sweep_dir, tmp_path):
        out = _copy_sweep(sweep_dir, tmp_path / "tampered")
        cell_id = manifest_of(out)["cells"][0]["cell_id"]
        (out / "cells" / cell_id / "allowed_domains.txt").unlink()
        audit = audit_sweep(out)
        bad = outcome_of(audit, "sweep-archive-integrity")
        assert bad.status != STATUS_OK
        assert any(
            "allowed_domains.txt" in violation.message
            for violation in bad.violations
        )

    def test_marker_disagreeing_with_manifest(self, sweep_dir, tmp_path):
        out = _copy_sweep(sweep_dir, tmp_path / "tampered")
        cell_id = manifest_of(out)["cells"][0]["cell_id"]
        marker_path = out / "cells" / cell_id / "cell.json"
        marker = json.loads(marker_path.read_text())
        marker["metrics"]["targets"] = -1
        marker_path.write_text(json.dumps(marker))
        audit = audit_sweep(out)
        bad = outcome_of(audit, "sweep-marker-consistency")
        assert bad.status != STATUS_OK
        assert any(
            violation.context.get("field") == "metrics"
            for violation in bad.violations
        )

    def test_audit_report_saves_json(self, sweep_dir, tmp_path):
        audit = audit_sweep(sweep_dir)
        path = tmp_path / "audit.json"
        audit.save(path)
        saved = json.loads(path.read_text())
        assert saved["ok"] is True


def _copy_sweep(src, dst):
    import shutil

    shutil.copytree(src, dst)
    return dst
