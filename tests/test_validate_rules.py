"""The invariant engine: zero violations on a pristine archive, and one
seeded-defect fixture per registered rule proving the rule fires.

The pristine fixture is a fully instrumented resumable campaign — every
artefact class present (datasets, survey, allow-list, report, trace,
metrics, checkpoints) — so the audit exercises the whole catalogue.
Each defect test copies the archive, corrupts exactly one artefact the
way a real bug would, and asserts the matching rule reports a
violation.  A coverage meta-test fails if any registered rule has no
defect fixture.
"""

import json
import shutil

import pytest

from repro.crawler.archive import save_crawl
from repro.crawler.resumable import ResumableCrawl
from repro.obs import MetricsRegistry, SpanRecorder, Tracer
from repro.validate import (
    RULE_REGISTRY,
    CrawlArtifacts,
    Severity,
    audit_archive,
    audit_artifacts,
    render_audit,
)
from repro.validate.engine import STATUS_SKIPPED, STATUS_VIOLATED
from repro.web.config import WorldConfig
from repro.web.generator import WebGenerator

RULES_SITES = 240


@pytest.fixture(scope="module")
def pristine_archive(tmp_path_factory):
    """One instrumented, checkpointed campaign archived with every artefact."""
    world = WebGenerator(WorldConfig.small(RULES_SITES, seed=13)).generate()
    tracer, metrics, spans = Tracer(), MetricsRegistry(), SpanRecorder()
    archive = tmp_path_factory.mktemp("pristine") / "archive"
    outcome = ResumableCrawl(
        world,
        checkpoint_dir=archive / "checkpoints",
        shard_count=3,
        checkpoint_every=25,
        backend="serial",
        tracer=tracer,
        metrics=metrics,
        spans=spans,
    ).run()
    save_crawl(outcome.result, archive)
    tracer.to_jsonl(archive / "trace.jsonl")
    metrics.snapshot().save(archive / "metrics.json")
    assert outcome.partial is None  # campaign completed
    return archive


@pytest.fixture
def archive(pristine_archive, tmp_path):
    """A private, corruptible copy of the pristine archive."""
    copy = tmp_path / "archive"
    shutil.copytree(pristine_archive, copy)
    return copy


# -- corruption helpers --------------------------------------------------------


def _load_jsonl(path):
    return [
        json.loads(line)
        for line in path.read_text().splitlines()
        if line.strip()
    ]


def _dump_jsonl(path, rows):
    path.write_text(
        "".join(json.dumps(row, sort_keys=True) + "\n" for row in rows)
    )


def _edit_json(path, mutate):
    data = json.loads(path.read_text())
    mutate(data)
    path.write_text(json.dumps(data, indent=2, sort_keys=True))


def _first_call(rows, predicate=lambda row, call: True):
    for row in rows:
        for call in row["calls"]:
            if predicate(row, call):
                return row, call
    raise AssertionError("fixture archive has no matching call")


# -- the seeded defects, one per rule ------------------------------------------


def _defect_report_accounting(archive):
    _edit_json(archive / "report.json", lambda d: d.update(ok=d["ok"] + 5))


def _defect_rank_partition(archive):
    rows = _load_jsonl(archive / "d_ba.jsonl")
    rows[1]["rank"] = rows[0]["rank"]
    _dump_jsonl(archive / "d_ba.jsonl", rows)


def _defect_after_accept_subset(archive):
    rows = _load_jsonl(archive / "d_aa.jsonl")
    rows[0]["domain"] = "never-visited.example"
    _dump_jsonl(archive / "d_aa.jsonl", rows)


def _defect_gating_decisions(archive):
    rows = _load_jsonl(archive / "d_ba.jsonl")
    _, call = _first_call(rows)
    call["decision"] = "blocked-not-enrolled"
    call["topics_returned"] = 2
    _dump_jsonl(archive / "d_ba.jsonl", rows)


def _defect_anomalous_not_allowed(archive):
    allowed = set(
        (archive / "allowed_domains.txt").read_text().split()
    )
    rows = _load_jsonl(archive / "d_ba.jsonl")
    _, call = _first_call(rows, lambda row, c: c["caller"] not in allowed)
    call["decision"] = "allowed-enrolled"
    _dump_jsonl(archive / "d_ba.jsonl", rows)


def _defect_questionable_before_accept(archive):
    aa_domains = {
        row["domain"]
        for row in _load_jsonl(archive / "d_aa.jsonl")
        if row["calls"]
    }
    rows = _load_jsonl(archive / "d_ba.jsonl")
    _, call = _first_call(rows, lambda row, c: row["domain"] in aa_domains)
    call["at"] = 10**9  # Before-Accept call after every After-Accept call
    _dump_jsonl(archive / "d_ba.jsonl", rows)


def _defect_fraction_bounds(archive):
    _edit_json(
        archive / "report.json",
        lambda d: d.update(accepted=d["ok"] + 5),  # accept_rate > 1
    )


def _defect_taxonomy_resolves(archive):
    rows = _load_jsonl(archive / "d_ba.jsonl")
    _, call = _first_call(
        rows, lambda row, c: c["decision"] != "blocked-not-enrolled"
    )
    call["topics_returned"] = 99
    _dump_jsonl(archive / "d_ba.jsonl", rows)


def _defect_survey_coverage(archive):
    path = archive / "attestation_survey.jsonl"
    lines = path.read_text().splitlines()
    path.write_text("\n".join(lines[1:]) + "\n")  # drop one surveyed party


def _defect_trace_consistency(archive):
    path = archive / "trace.jsonl"
    lines = path.read_text().splitlines()
    path.write_text("\n".join(lines[:-5]) + "\n")  # truncated export


def _defect_trace_drop_free(archive):
    path = archive / "trace.jsonl"
    lines = path.read_text().splitlines()
    meta = json.loads(lines[0])["meta"]
    meta["dropped"] = 3
    meta["emitted"] += 3  # bookkeeping stays consistent; only drops appear
    lines[0] = json.dumps({"meta": meta}, sort_keys=True)
    path.write_text("\n".join(lines) + "\n")


def _defect_metrics_consistency(archive):
    def mutate(data):
        for entry in data["counters"]:
            if entry["name"] == "crawl_visits_total" and entry["labels"] == {
                "phase": "before-accept",
                "outcome": "ok",
            }:
                entry["value"] -= 1
                return
        raise AssertionError("expected counter missing from metrics.json")

    _edit_json(archive / "metrics.json", mutate)


def _defect_checkpoint_partition(archive):
    _edit_json(
        archive / "checkpoints" / "MANIFEST.json",
        lambda d: d["shards"]["1"].update(
            targets=d["shards"]["1"]["targets"] + 10
        ),  # rank ranges now overlap shard 2's slice
    )


def _defect_partial_consistency(archive):
    (archive / "partial.json").write_text(
        json.dumps(
            {
                "missing_targets": 10,
                "missing_ranges": [
                    {"shard": 0, "from_rank": 5, "to_rank": 9, "error": "x"},
                    {"shard": 1, "from_rank": 8, "to_rank": 12, "error": "y"},
                ],
            }
        )
    )


DEFECTS = [
    ("report-accounting", _defect_report_accounting),
    ("rank-partition", _defect_rank_partition),
    ("after-accept-subset", _defect_after_accept_subset),
    ("gating-decisions", _defect_gating_decisions),
    ("anomalous-not-allowed", _defect_anomalous_not_allowed),
    ("questionable-before-accept", _defect_questionable_before_accept),
    ("fraction-bounds", _defect_fraction_bounds),
    ("taxonomy-resolves", _defect_taxonomy_resolves),
    ("survey-coverage", _defect_survey_coverage),
    ("trace-consistency", _defect_trace_consistency),
    ("trace-drop-free", _defect_trace_drop_free),
    ("metrics-consistency", _defect_metrics_consistency),
    ("checkpoint-partition", _defect_checkpoint_partition),
    ("partial-consistency", _defect_partial_consistency),
]


class TestPristineArchive:
    def test_zero_violations(self, pristine_archive):
        report = audit_archive(pristine_archive)
        assert report.ok, render_audit(report)
        assert report.violations == []

    def test_only_partial_rule_skipped(self, pristine_archive):
        """Every artefact except the partial manifest is present, so only
        its rule may be skipped — proof the fixture exercises the rest."""
        report = audit_archive(pristine_archive)
        skipped = {outcome.rule for outcome in report.skipped()}
        assert skipped == {"partial-consistency"}

    def test_json_report_roundtrips(self, pristine_archive, tmp_path):
        report = audit_archive(pristine_archive)
        out = tmp_path / "audit.json"
        report.save(out)
        payload = json.loads(out.read_text())
        assert payload["ok"] is True
        assert payload["errors"] == 0
        assert len(payload["outcomes"]) == len(RULE_REGISTRY)


class TestSeededDefects:
    @pytest.mark.parametrize(
        "rule_name,corrupt", DEFECTS, ids=[name for name, _ in DEFECTS]
    )
    def test_rule_fires_on_its_defect(self, archive, rule_name, corrupt):
        corrupt(archive)
        report = audit_archive(archive)
        fired = {
            outcome.rule
            for outcome in report.outcomes
            if outcome.status == STATUS_VIOLATED
        }
        assert rule_name in fired, render_audit(report)
        if RULE_REGISTRY[rule_name].severity is Severity.ERROR:
            assert not report.ok
        else:
            # WARNING-severity rules surface without failing the audit.
            assert report.ok

    def test_every_registered_rule_has_a_defect_fixture(self):
        assert {name for name, _ in DEFECTS} == set(RULE_REGISTRY)

    def test_violations_carry_structured_context(self, archive):
        _defect_rank_partition(archive)
        report = audit_archive(archive)
        (outcome,) = [
            o for o in report.outcomes if o.rule == "rank-partition"
        ]
        assert outcome.violations
        violation = outcome.violations[0]
        assert violation.context["rank"] >= 1
        assert violation.to_dict()["severity"] == "error"


class TestTaxonomyInjection:
    def test_orphan_taxonomy_entries_fail_construction(self, pristine_archive):
        from repro.taxonomy.tree import TopicNode

        artifacts = CrawlArtifacts.load(
            pristine_archive,
            taxonomy_entries=(
                TopicNode(topic_id=1, path="/Arts & Entertainment"),
                TopicNode(topic_id=2, path="/Orphans/Deep/Child"),
            ),
        )
        report = audit_artifacts(artifacts)
        (outcome,) = [
            o for o in report.outcomes if o.rule == "taxonomy-resolves"
        ]
        assert outcome.status == STATUS_VIOLATED
        assert "taxonomy does not construct" in outcome.violations[0].message


class TestRuleRegistry:
    def test_duplicate_rule_names_rejected(self):
        from repro.validate.rules import rule

        with pytest.raises(ValueError, match="duplicate rule name"):
            rule("report-accounting", "clash")(lambda artifacts: iter(()))

    def test_rules_skip_when_artifacts_missing(self, pristine_archive, tmp_path):
        bare = tmp_path / "bare"
        bare.mkdir()
        for name in (
            "report.json",
            "d_ba.jsonl",
            "d_aa.jsonl",
            "allowed_domains.txt",
            "attestation_survey.jsonl",
        ):
            shutil.copy(pristine_archive / name, bare / name)
        report = audit_archive(bare)
        assert report.ok
        skipped = {o.rule for o in report.skipped()}
        assert skipped == {
            "checkpoint-partition",
            "metrics-consistency",
            "partial-consistency",
            "trace-consistency",
            "trace-drop-free",
        }
        for outcome in report.skipped():
            assert outcome.status == STATUS_SKIPPED
            assert outcome.missing
