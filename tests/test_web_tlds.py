"""Unit tests for TLD regions (Figure 6's buckets)."""

import pytest

from repro.web.tlds import (
    EU_TLDS,
    OTHER_TLDS,
    REGION_TLD_POOLS,
    Region,
    region_of_domain,
    region_of_tld,
)


class TestRegionOfTld:
    @pytest.mark.parametrize(
        "tld,region",
        [
            ("com", Region.COM),
            ("jp", Region.JP),
            ("co.jp", Region.JP),
            ("ru", Region.RU),
            ("com.ru", Region.RU),
            ("de", Region.EU),
            ("fr", Region.EU),
            ("eu", Region.EU),
            ("co.uk", Region.OTHER),  # UK is not in the EU bucket
            ("uk", Region.OTHER),
            ("io", Region.OTHER),
            ("com.br", Region.OTHER),
        ],
    )
    def test_bucketing(self, tld, region):
        assert region_of_tld(tld) is region

    def test_case_and_dot_insensitive(self):
        assert region_of_tld(".DE") is Region.EU

    def test_thirty_eu_tlds(self):
        # The paper: "30 TLDs for EU countries where the GDPR is in force".
        assert len(EU_TLDS) == 30


class TestRegionOfDomain:
    @pytest.mark.parametrize(
        "domain,region",
        [
            ("yandex.ru", Region.RU),
            ("example.com", Region.COM),
            ("shop.co.jp", Region.JP),
            ("zeitung.de", Region.EU),
            ("site.co.uk", Region.OTHER),
        ],
    )
    def test_bucketing(self, domain, region):
        assert region_of_domain(domain) is region


class TestPools:
    def test_every_region_has_a_pool(self):
        assert set(REGION_TLD_POOLS) == set(Region)

    def test_pool_tlds_bucket_back_to_their_region(self):
        for region, pool in REGION_TLD_POOLS.items():
            for tld, _ in pool:
                assert region_of_tld(tld) is region, (region, tld)

    def test_other_pool_has_no_eu_leakage(self):
        for tld in OTHER_TLDS:
            assert region_of_tld(tld) is Region.OTHER
