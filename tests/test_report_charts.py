"""SVG chart primitives and HTML helpers: determinism, escaping, marks."""

import pytest

from repro.report.html import (
    data_table,
    esc,
    kv_table,
    legend,
    note,
    page,
    section,
    stat_tiles,
)
from repro.report.svg import (
    _ticks,
    empty_chart,
    fmt_coord,
    fmt_num,
    hbar_chart,
    line_chart,
    paired_hbar_chart,
)


class TestFormatting:
    def test_fmt_coord_trims(self):
        assert fmt_coord(12.0) == "12"
        assert fmt_coord(12.50) == "12.5"
        assert fmt_coord(12.345) == "12.35"  # 2 dp max
        assert fmt_coord(-0.001) == "0"  # no "-0"

    def test_fmt_num(self):
        assert fmt_num(1234567) == "1,234,567"
        assert fmt_num(12.0) == "12"
        assert fmt_num(12.345) == "12.35"

    def test_ticks_are_round_and_cover(self):
        for max_value in (1, 7, 42, 99, 1234, 0.37):
            ticks = _ticks(max_value)
            assert ticks[0] == 0
            assert ticks[-1] >= max_value * 0.99
        assert _ticks(0) == [0.0, 1.0]


class TestHbar:
    ROWS = [("alpha.com", 120), ("beta.net", 80), ("gamma.org", 5)]

    def test_deterministic(self):
        assert hbar_chart(self.ROWS, "t") == hbar_chart(self.ROWS, "t")

    def test_has_mark_per_row_and_tooltips(self):
        chart = hbar_chart(self.ROWS, "t", unit="sites")
        assert chart.count('class="bar-s1"') == len(self.ROWS)
        assert chart.count("<title>") == len(self.ROWS)
        assert "alpha.com: 120 sites" in chart

    def test_rounded_data_end(self):
        # The bar path carries quadratic corners (the 4px rounded end).
        chart = hbar_chart(self.ROWS, "t")
        assert chart.count("Q") >= 2 * len(self.ROWS)

    def test_escapes_labels(self):
        chart = hbar_chart([('<script>"x"</script>', 1)], "t")
        assert "<script>" not in chart
        assert "&lt;script&gt;" in chart

    def test_flags_render_in_ink_not_color(self):
        chart = hbar_chart(
            [("shard 0", 10), ("shard 1", 20)],
            "t",
            flags={"shard 1": "◀ straggler"},
        )
        assert "◀ straggler" in chart
        assert 'class="flag"' in chart

    def test_empty_rows(self):
        assert "no data" in hbar_chart([], "t")


class TestPairedHbar:
    ROWS = [("cp-a", 100, 40), ("cp-b", 60, 55)]

    def test_two_series_classes(self):
        chart = paired_hbar_chart(self.ROWS, "t", ("present", "calls"))
        assert chart.count('class="bar-s1"') == len(self.ROWS)
        assert chart.count('class="bar-s2"') == len(self.ROWS)

    def test_tooltip_names_both_series(self):
        chart = paired_hbar_chart(self.ROWS, "t", ("present", "calls"))
        assert "cp-a — present: 100, calls: 40" in chart

    def test_deterministic(self):
        first = paired_hbar_chart(self.ROWS, "t", ("a", "b"))
        assert first == paired_hbar_chart(self.ROWS, "t", ("a", "b"))


class TestLineChart:
    SERIES = [("s1", "rate", [("2023-09", 5.0), ("2023-10", 9.0), ("2023-11", 7.0)])]

    def test_marker_per_point_with_surface_ring(self):
        chart = line_chart(self.SERIES, "t")
        assert chart.count('class="dot-s1"') == 3
        assert chart.count("<polyline") == 1
        assert 'stroke-width="2"' in chart

    def test_direct_end_label(self):
        chart = line_chart(self.SERIES, "t")
        assert ">7<" in chart  # last value labelled directly

    def test_tooltip_carries_series_and_x(self):
        chart = line_chart(self.SERIES, "t", unit="callers")
        assert "rate — 2023-10: 9 callers" in chart

    def test_empty_series_filtered(self):
        assert "no data" in line_chart([], "t")
        assert "no data" in line_chart([("s1", "x", [])], "t")

    def test_multi_series(self):
        series = self.SERIES + [
            ("s2", "other", [("2023-09", 1.0), ("2023-10", 2.0)])
        ]
        chart = line_chart(series, "t")
        assert chart.count("<polyline") == 2
        assert 'class="dot-s2"' in chart


class TestHtmlHelpers:
    def test_esc(self):
        assert esc('<a href="x">&') == "&lt;a href=&quot;x&quot;&gt;&amp;"

    def test_note_and_section(self):
        assert 'class="note"' in note("not captured")
        body = section("Title", note("x"), desc="why")
        assert "<h2>Title</h2>" in body and "why" in body

    def test_tables_escape(self):
        assert "&lt;b&gt;" in kv_table([("k", "<b>")])
        table = data_table(("h",), [("<i>",)], numeric=(0,))
        assert "&lt;i&gt;" in table and 'class="num"' in table

    def test_stat_tiles_and_legend(self):
        tiles = stat_tiles([("visits", "1,200", "ok")])
        assert "visits" in tiles and "1,200" in tiles
        keys = legend([("s1", "present"), ("s2", "calls")])
        assert keys.count('class="key"') == 2

    def test_page_marks_active_nav(self):
        doc = page("T", "figures.html", "<p>b</p>")
        assert '<a href="figures.html" class="active">' in doc
        assert doc.count('class="active"') == 1
        assert "<!DOCTYPE html>" in doc

    def test_empty_chart_is_valid_svg(self):
        assert empty_chart("t").startswith("<svg")


@pytest.mark.parametrize("value", [0.0, 0.5, 1, 99.99, 1e6])
def test_fmt_coord_roundtrips_floats(value):
    assert float(fmt_coord(value)) == pytest.approx(value, abs=0.01)
