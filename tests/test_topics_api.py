"""Unit tests for the three web-facing API surfaces and caller resolution."""

from repro.attestation.allowlist import AllowList, AllowListDatabase
from repro.browser.context import root_context_for
from repro.browser.topics.api import TopicsApi
from repro.browser.topics.manager import BrowsingTopicsSiteDataManager
from repro.browser.topics.selection import EpochTopicsSelector
from repro.browser.topics.types import ApiCallType, Topic
from repro.taxonomy.classifier import SiteClassifier
from repro.util.urls import https


def make_api(allowed=("criteo.com",), corrupt=False):
    db = AllowListDatabase.from_allowlist(AllowList.of(allowed))
    if corrupt:
        db.corrupt()
    manager = BrowsingTopicsSiteDataManager(
        EpochTopicsSelector(SiteClassifier(), user_seed=1), db
    )
    return TopicsApi(manager), manager


class TestJavascriptSurface:
    def test_caller_is_context_origin(self):
        api, manager = make_api(corrupt=True)
        root = root_context_for(https("www.example.org"))
        api.document_browsing_topics(root, now=0)
        call = manager.call_log[0]
        assert call.call_type is ApiCallType.JAVASCRIPT
        assert call.caller == "example.org"  # the page, not any script host
        assert call.site == "example.org"

    def test_iframe_script_attributed_to_iframe(self):
        api, manager = make_api()
        root = root_context_for(https("www.example.org"))
        frame = root.open_iframe(https("frame.criteo.com", "/topics.html"))
        api.document_browsing_topics(frame, now=0)
        call = manager.call_log[0]
        assert call.caller == "criteo.com"
        assert call.site == "example.org"  # observation is against the top frame

    def test_skip_observation_passthrough(self):
        api, manager = make_api()
        root = root_context_for(https("www.example.org"))
        frame = root.open_iframe(https("frame.criteo.com"))
        api.document_browsing_topics(frame, now=0, skip_observation=True)
        assert manager.history.eligible_sites(0) == []


class TestFetchSurface:
    def test_caller_is_destination(self):
        api, manager = make_api()
        root = root_context_for(https("www.example.org"))
        result = api.fetch_with_topics(root, https("bid.criteo.com", "/bid"), now=0)
        call = manager.call_log[0]
        assert call.call_type is ApiCallType.FETCH
        assert call.caller == "criteo.com"
        assert result.url.host == "bid.criteo.com"

    def test_header_empty_without_topics(self):
        api, _ = make_api()
        root = root_context_for(https("www.example.org"))
        result = api.fetch_with_topics(root, https("bid.criteo.com", "/bid"), now=0)
        real = [t for t in result.topics if not t.is_noise]
        assert real == []

    def test_header_serialisation(self):
        topic = Topic(topic_id=42, taxonomy_version="2", model_version="1")
        from repro.browser.topics.api import FetchWithTopicsResult

        result = FetchWithTopicsResult(url=https("a.com"), topics=(topic,))
        header = result.sec_browsing_topics_header
        assert header.startswith("(42);v=chrome.1:2:1")
        assert ";p=P" in header  # padding entry, per spec

    def test_fetch_observation_requires_server_opt_in(self):
        api, manager = make_api()
        root = root_context_for(https("www.example.org"))
        result = api.fetch_with_topics(
            root, https("bid.criteo.com", "/bid"), now=0,
            response_observe_header=None,
        )
        assert not result.observed
        assert manager.history.eligible_sites(0) == []

    def test_fetch_observation_with_opt_in(self):
        api, manager = make_api()
        root = root_context_for(https("www.example.org"))
        result = api.fetch_with_topics(
            root, https("bid.criteo.com", "/bid"), now=0,
            response_observe_header="?1",
        )
        assert result.observed
        assert manager.history.observers_of(0, "example.org") == {"criteo.com"}

    def test_blocked_fetch_never_observes(self):
        api, manager = make_api(allowed=("other.com",))
        root = root_context_for(https("www.example.org"))
        result = api.fetch_with_topics(
            root, https("bid.criteo.com", "/bid"), now=0
        )
        assert not result.observed
        assert manager.history.eligible_sites(0) == []


class TestIframeSurface:
    def test_caller_is_frame_source(self):
        api, manager = make_api()
        root = root_context_for(https("www.example.org"))
        child, _ = api.iframe_with_topics(root, https("ads.criteo.com", "/f"), now=0)
        call = manager.call_log[0]
        assert call.call_type is ApiCallType.IFRAME
        assert call.caller == "criteo.com"
        assert child.parent is root
        assert child.origin.host == "ads.criteo.com"

    def test_blocked_iframe_still_creates_context(self):
        api, manager = make_api(allowed=("other.com",))
        root = root_context_for(https("www.example.org"))
        child, topics = api.iframe_with_topics(root, https("ads.criteo.com"), now=0)
        assert topics == []
        assert child.origin.host == "ads.criteo.com"
        assert not manager.call_log[0].allowed
