"""Concurrent campaigns: shared world builds, independent results.

Two jobs submitted together over the same ``(sites, seed, vantage)``
must share **one** world build (pinned via the service's world-build
counter) and still archive byte-identically to the same jobs submitted
one at a time — concurrency is a scheduling detail, never a data
difference.
"""

from __future__ import annotations

import asyncio
from pathlib import Path

from repro.service import CrawlService, JobSpec, JobState

SITES = 100
EVERY = 20


def _spec(seed: int = 4, shards: int = 2) -> JobSpec:
    return JobSpec(
        sites=SITES, seed=seed, shards=shards, checkpoint_every=EVERY
    )


async def _submit_all(
    service: CrawlService, specs: list[JobSpec]
) -> list[Path]:
    job_ids = [await service.submit(spec) for spec in specs]
    archives = []
    for job_id in job_ids:
        record = await service.wait(job_id)
        assert record.state is JobState.DONE, record.error
        archives.append(Path(record.archive_dir))
    return archives


def _read_archive(archive: Path) -> dict[str, bytes]:
    return {
        path.name: path.read_bytes() for path in sorted(archive.iterdir())
    }


class TestSharedWorldCache:
    def test_concurrent_same_world_builds_once(self, tmp_path):
        """Two concurrent campaigns over one world fingerprint: one build,
        one cache hit, and archives identical to serial submission."""

        # Same world, different shard layouts — the cache key is the
        # world, not the campaign.
        specs = [_spec(shards=2), _spec(shards=3)]

        async def concurrent():
            service = CrawlService(
                tmp_path / "concurrent", max_jobs=2, backend="thread"
            )
            await service.start()
            archives = await _submit_all(service, specs)
            snapshot = service.metrics.snapshot()
            await service.close()
            return archives, snapshot

        archives, snapshot = asyncio.run(concurrent())
        assert snapshot.counter_value("service_world_builds_total") == 1
        assert snapshot.counter_value("service_world_cache_hits_total") == 1

        async def serial():
            # max_jobs=1 forces one-at-a-time execution of the same specs.
            service = CrawlService(
                tmp_path / "serial", max_jobs=1, backend="thread"
            )
            await service.start()
            archives = await _submit_all(service, specs)
            await service.close()
            return archives

        serial_archives = asyncio.run(serial())
        for concurrent_dir, serial_dir in zip(archives, serial_archives):
            assert _read_archive(concurrent_dir) == _read_archive(serial_dir)

    def test_distinct_worlds_build_separately(self, tmp_path):
        async def run():
            service = CrawlService(tmp_path / "svc", max_jobs=2)
            await service.start()
            await _submit_all(service, [_spec(seed=4), _spec(seed=9)])
            snapshot = service.metrics.snapshot()
            await service.close()
            return snapshot

        snapshot = asyncio.run(run())
        assert snapshot.counter_value("service_world_builds_total") == 2
        assert snapshot.counter_value("service_world_cache_hits_total") == 0

    def test_sequential_jobs_reuse_the_cached_world(self, tmp_path):
        async def run():
            service = CrawlService(tmp_path / "svc", max_jobs=1)
            await service.start()
            await _submit_all(service, [_spec(), _spec()])
            snapshot = service.metrics.snapshot()
            await service.close()
            return snapshot

        snapshot = asyncio.run(run())
        assert snapshot.counter_value("service_world_builds_total") == 1
        assert snapshot.counter_value("service_world_cache_hits_total") == 1
