"""Tests for the re-identification attack machinery and study."""

import pytest

from repro.privacy.attack import (
    LinkageResult,
    SequenceMatcher,
    TopicOverlapMatcher,
    link_profiles,
)
from repro.privacy.experiment import (
    ReidentificationConfig,
    render_sweep,
    run_reidentification,
    sweep_epochs,
    sweep_noise,
)


class TestMatchers:
    def test_overlap_identical(self):
        view = [(1, 2), (3,)]
        assert TopicOverlapMatcher().score(view, view) == 1.0

    def test_overlap_disjoint(self):
        assert TopicOverlapMatcher().score([(1, 2)], [(3, 4)]) == 0.0

    def test_overlap_partial(self):
        score = TopicOverlapMatcher().score([(1, 2)], [(2, 3)])
        assert score == pytest.approx(1 / 3)

    def test_overlap_empty(self):
        assert TopicOverlapMatcher().score([()], [()]) == 0.0

    def test_sequence_alignment_matters(self):
        matcher = SequenceMatcher()
        aligned = matcher.score([(1,), (2,)], [(1,), (2,)])
        shifted = matcher.score([(1,), (2,)], [(2,), (1,)])
        assert aligned == 2.0
        assert shifted == 0.0

    def test_sequence_unequal_lengths_zip(self):
        assert SequenceMatcher().score([(1,)], [(1,), (2,)]) == 1.0


class TestLinkage:
    def test_perfect_separation(self):
        views = [[(i,)] for i in range(5)]
        result = link_profiles(views, views, SequenceMatcher())
        assert result.accuracy_top1 == 1.0
        assert result.mean_rank == 1.0

    def test_indistinguishable_views_rank_last(self):
        # Identical views for everyone: ties rank pessimistically.
        views = [[(1,)]] * 4
        result = link_profiles(views, views, SequenceMatcher())
        assert result.accuracy_top1 == 0.0
        assert all(rank == 4 for rank in result.true_match_ranks)

    def test_population_mismatch_rejected(self):
        with pytest.raises(ValueError):
            link_profiles([[(1,)]], [], SequenceMatcher())

    def test_result_metrics(self):
        result = LinkageResult(population_size=4, true_match_ranks=(1, 1, 2, 4))
        assert result.accuracy_top1 == 0.5
        assert result.accuracy_top_k(2) == 0.75
        assert result.mean_rank == 2.0
        assert result.random_baseline == 0.25


class TestStudy:
    @pytest.fixture(scope="class")
    def result(self):
        return run_reidentification(
            ReidentificationConfig(population_size=40, observation_epochs=4)
        )

    def test_attack_beats_random(self, result):
        assert result.accuracy_top1 > 5 * result.linkage.random_baseline

    def test_uplift(self, result):
        assert result.uplift_over_random > 5

    def test_deterministic(self, result):
        rerun = run_reidentification(
            ReidentificationConfig(population_size=40, observation_epochs=4)
        )
        assert rerun.linkage.true_match_ranks == result.linkage.true_match_ranks

    def test_more_epochs_help(self):
        results = sweep_epochs(
            ReidentificationConfig(population_size=30), epoch_counts=[1, 6]
        )
        assert results[1].accuracy_top1 >= results[0].accuracy_top1

    def test_noise_hurts(self):
        results = sweep_noise(
            ReidentificationConfig(population_size=30),
            noise_levels=[0.0, 0.6],
        )
        assert results[1].accuracy_top1 <= results[0].accuracy_top1

    def test_render_sweep(self):
        results = sweep_noise(
            ReidentificationConfig(population_size=10), noise_levels=[0.0]
        )
        text = render_sweep(results, "noise")
        assert "top-1" in text and "uplift" in text

    def test_config_validation(self):
        with pytest.raises(ValueError):
            ReidentificationConfig(population_size=0)
        with pytest.raises(ValueError):
            ReidentificationConfig(observation_epochs=0)
