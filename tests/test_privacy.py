"""Tests for the re-identification attack machinery and study."""

import pytest

from repro.privacy.attack import (
    LinkageResult,
    SequenceMatcher,
    TopicOverlapMatcher,
    link_profiles,
)
from repro.privacy.experiment import (
    ReidentificationConfig,
    render_sweep,
    run_reidentification,
    sweep_epochs,
    sweep_noise,
)


class TestMatchers:
    def test_overlap_identical(self):
        view = [(1, 2), (3,)]
        assert TopicOverlapMatcher().score(view, view) == 1.0

    def test_overlap_disjoint(self):
        assert TopicOverlapMatcher().score([(1, 2)], [(3, 4)]) == 0.0

    def test_overlap_partial(self):
        score = TopicOverlapMatcher().score([(1, 2)], [(2, 3)])
        assert score == pytest.approx(1 / 3)

    def test_overlap_empty(self):
        assert TopicOverlapMatcher().score([()], [()]) == 0.0

    def test_sequence_alignment_matters(self):
        matcher = SequenceMatcher()
        aligned = matcher.score([(1,), (2,)], [(1,), (2,)])
        shifted = matcher.score([(1,), (2,)], [(2,), (1,)])
        assert aligned == 2.0
        assert shifted == 0.0

    def test_sequence_unequal_lengths_zip(self):
        assert SequenceMatcher().score([(1,)], [(1,), (2,)]) == 1.0


class TestLinkage:
    def test_perfect_separation(self):
        views = [[(i,)] for i in range(5)]
        result = link_profiles(views, views, SequenceMatcher())
        assert result.accuracy_top1 == 1.0
        assert result.mean_rank == 1.0

    def test_indistinguishable_views_rank_last(self):
        # Identical views for everyone: ties rank pessimistically.
        views = [[(1,)]] * 4
        result = link_profiles(views, views, SequenceMatcher())
        assert result.accuracy_top1 == 0.0
        assert all(rank == 4 for rank in result.true_match_ranks)

    def test_population_mismatch_rejected(self):
        with pytest.raises(ValueError):
            link_profiles([[(1,)]], [], SequenceMatcher())

    def test_result_metrics(self):
        result = LinkageResult(population_size=4, true_match_ranks=(1, 1, 2, 4))
        assert result.accuracy_top1 == 0.5
        assert result.accuracy_top_k(2) == 0.75
        assert result.mean_rank == 2.0
        assert result.random_baseline == 0.25


class TestStudy:
    @pytest.fixture(scope="class")
    def result(self):
        return run_reidentification(
            ReidentificationConfig(population_size=40, observation_epochs=4)
        )

    def test_attack_beats_random(self, result):
        assert result.accuracy_top1 > 5 * result.linkage.random_baseline

    def test_uplift(self, result):
        assert result.uplift_over_random > 5

    def test_deterministic(self, result):
        rerun = run_reidentification(
            ReidentificationConfig(population_size=40, observation_epochs=4)
        )
        assert rerun.linkage.true_match_ranks == result.linkage.true_match_ranks

    def test_more_epochs_help(self):
        results = sweep_epochs(
            ReidentificationConfig(population_size=30), epoch_counts=[1, 6]
        )
        assert results[1].accuracy_top1 >= results[0].accuracy_top1

    def test_noise_hurts(self):
        results = sweep_noise(
            ReidentificationConfig(population_size=30),
            noise_levels=[0.0, 0.6],
        )
        assert results[1].accuracy_top1 <= results[0].accuracy_top1

    def test_render_sweep(self):
        results = sweep_noise(
            ReidentificationConfig(population_size=10), noise_levels=[0.0]
        )
        text = render_sweep(results, "noise")
        assert "top-1" in text and "uplift" in text

    def test_config_validation(self):
        with pytest.raises(ValueError):
            ReidentificationConfig(population_size=0)
        with pytest.raises(ValueError):
            ReidentificationConfig(observation_epochs=0)

    def test_config_rejects_negative_burn_in(self):
        with pytest.raises(ValueError, match="burn_in_epochs"):
            ReidentificationConfig(burn_in_epochs=-1)
        # zero burn-in is a valid study (query from the first epoch)
        ReidentificationConfig(burn_in_epochs=0)

    def test_config_rejects_non_positive_visits(self):
        with pytest.raises(ValueError, match="visits_per_epoch"):
            ReidentificationConfig(visits_per_epoch=0)
        with pytest.raises(ValueError, match="visits_per_epoch"):
            ReidentificationConfig(visits_per_epoch=-3)

    def test_config_rejects_out_of_range_noise(self):
        with pytest.raises(ValueError, match="noise_probability"):
            ReidentificationConfig(noise_probability=-0.01)
        with pytest.raises(ValueError, match="noise_probability"):
            ReidentificationConfig(noise_probability=1.01)
        # the endpoints are valid (no noise / always noise)
        ReidentificationConfig(noise_probability=0.0)
        ReidentificationConfig(noise_probability=1.0)

    def test_sweep_defaults_are_immutable(self):
        import inspect

        for func, parameter in (
            (sweep_epochs, "epoch_counts"),
            (sweep_noise, "noise_levels"),
        ):
            default = inspect.signature(func).parameters[parameter].default
            assert isinstance(default, tuple), f"{parameter} default must be a tuple"

    def test_backend_does_not_change_the_study(self, result):
        threaded = run_reidentification(
            ReidentificationConfig(population_size=40, observation_epochs=4),
            backend="thread",
            max_workers=3,
        )
        assert threaded.linkage.true_match_ranks == result.linkage.true_match_ranks

    def test_study_matches_legacy_per_user_pipeline(self, result):
        """The columnar + sparse study reproduces the original loop."""
        from repro.privacy.attack import link_profiles as _link
        from repro.users.browsing import TraceGenerator
        from repro.users.population import Population

        config = ReidentificationConfig(population_size=40, observation_epochs=4)
        population = Population.generate(config.population_size, seed=config.seed)
        generator = TraceGenerator(
            population,
            callers=[config.caller_a, config.caller_b],
            visits_per_epoch=config.visits_per_epoch,
            noise_probability=config.noise_probability,
        )
        total = config.burn_in_epochs + config.observation_epochs
        query = list(range(config.burn_in_epochs, total))
        views_a, views_b = [], []
        for user_id in range(len(population)):
            session = generator.run(user_id, total)
            views_a.append(generator.observed_topics(session, config.caller_a, query))
            views_b.append(generator.observed_topics(session, config.caller_b, query))
        legacy = _link(views_a, views_b, SequenceMatcher(), strategy="dense")
        assert result.linkage.true_match_ranks == legacy.true_match_ranks
