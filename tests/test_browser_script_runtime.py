"""Direct ScriptRuntime tests: behaviours, origin modes, environments."""

import pytest

from repro.attestation.allowlist import AllowList, AllowListDatabase
from repro.browser.context import root_context_for
from repro.browser.network import NetworkLog, NetworkStack
from repro.browser.script import ScriptOriginMode, ScriptRuntime
from repro.browser.topics.api import TopicsApi
from repro.browser.topics.manager import BrowsingTopicsSiteDataManager
from repro.browser.topics.selection import EpochTopicsSelector
from repro.taxonomy.classifier import SiteClassifier
from repro.util.urls import https
from repro.web.page import ScriptKind, ScriptTag


@pytest.fixture
def runtime_parts(world):
    database = AllowListDatabase.from_allowlist(AllowList.of(["criteo.com"]))
    database.corrupt()  # observe every caller, as the paper's crawler does
    manager = BrowsingTopicsSiteDataManager(
        EpochTopicsSelector(SiteClassifier(), user_seed=1), database
    )
    api = TopicsApi(manager)
    return manager, api


def make_runtime(world, api, mode=ScriptOriginMode.EMBEDDER):
    return ScriptRuntime(world, api, NetworkStack(), mode)


def gtm_tag(calls=1, fires_before=False):
    return ScriptTag(
        src=https("www.googletagmanager.com", "/gtm.js"),
        kind=ScriptKind.TAG_MANAGER,
        rogue_topics_call=True,
        rogue_call_count=calls,
        rogue_fires_before_consent=fires_before,
    )


class TestInfrastructureScripts:
    def test_rogue_call_from_embedder(self, world, runtime_parts):
        manager, api = runtime_parts
        runtime = make_runtime(world, api)
        root = root_context_for(https("www.somesite.com"))
        runtime.execute(gtm_tag(), root, True, 0, NetworkLog(), "somesite.com")
        assert manager.call_log[-1].caller == "somesite.com"

    def test_rogue_call_count_respected(self, world, runtime_parts):
        manager, api = runtime_parts
        runtime = make_runtime(world, api)
        root = root_context_for(https("www.somesite.com"))
        runtime.execute(gtm_tag(calls=3), root, True, 0, NetworkLog(), "somesite.com")
        assert manager.call_count == 3

    def test_non_rogue_gtm_silent(self, world, runtime_parts):
        manager, api = runtime_parts
        runtime = make_runtime(world, api)
        tag = ScriptTag(
            src=https("www.googletagmanager.com", "/gtm.js"),
            kind=ScriptKind.TAG_MANAGER,
        )
        root = root_context_for(https("www.somesite.com"))
        runtime.execute(tag, root, True, 0, NetworkLog(), "somesite.com")
        assert manager.call_count == 0

    def test_before_consent_respects_flag(self, world, runtime_parts):
        manager, api = runtime_parts
        runtime = make_runtime(world, api)
        root = root_context_for(https("www.somesite.com"))
        runtime.execute(
            gtm_tag(fires_before=False), root, False, 0, NetworkLog(), "somesite.com"
        )
        assert manager.call_count == 0
        runtime.execute(
            gtm_tag(fires_before=True), root, False, 0, NetworkLog(), "somesite.com"
        )
        assert manager.call_count == 1

    def test_script_url_mode_attributes_to_script_host(self, world, runtime_parts):
        manager, api = runtime_parts
        runtime = make_runtime(world, api, ScriptOriginMode.SCRIPT_URL)
        root = root_context_for(https("www.somesite.com"))
        runtime.execute(gtm_tag(), root, True, 0, NetworkLog(), "somesite.com")
        assert manager.call_log[-1].caller == "googletagmanager.com"


class TestAdTags:
    def _ad_tag(self, domain):
        return ScriptTag(
            src=https(f"static.{domain}", "/tag/ads.js"), kind=ScriptKind.AD_TAG
        )

    def test_unknown_ad_tag_no_policy_no_call(self, world, runtime_parts):
        manager, api = runtime_parts
        runtime = make_runtime(world, api)
        root = root_context_for(https("www.somesite.com"))
        runtime.execute(
            self._ad_tag("not-in-world.example"),
            root,
            True,
            0,
            NetworkLog(),
            "somesite.com",
        )
        assert manager.call_count == 0

    def test_enabled_site_produces_calls(self, world, runtime_parts):
        manager, api = runtime_parts
        runtime = make_runtime(world, api)
        policy = world.policy_of("criteo.com")
        enabled_site = next(
            s.domain
            for s in world.websites
            if policy.is_enabled("criteo.com", s.domain, 0)
        )
        root = root_context_for(https(f"www.{enabled_site}"))
        runtime.execute(
            self._ad_tag("criteo.com"), root, True, 0, NetworkLog(), enabled_site
        )
        assert manager.call_count >= 1
        assert manager.call_log[0].caller == "criteo.com"

    def test_environment_multiplier_lookup(self, world, runtime_parts):
        _, api = runtime_parts
        runtime = make_runtime(world, api)
        config = world.config
        no_banner_site = next(
            s for s in world.websites if s.banner is None
        )
        assert runtime._consent_environment_multiplier(  # noqa: SLF001
            no_banner_site.domain
        ) == config.questionable_multiplier_no_banner
        leaky = next(
            s
            for s in world.websites
            if s.banner is not None
            and s.banner.cmp is not None
            and not s.banner.gates_before_consent
        )
        assert runtime._consent_environment_multiplier(  # noqa: SLF001
            leaky.domain
        ) == config.questionable_multiplier_leaky_cmp

    def test_unknown_site_uses_no_banner_multiplier(self, world, runtime_parts):
        _, api = runtime_parts
        runtime = make_runtime(world, api)
        assert runtime._consent_environment_multiplier(  # noqa: SLF001
            "never-generated.example"
        ) == world.config.questionable_multiplier_no_banner
