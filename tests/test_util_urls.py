"""Unit tests for the URL model and origin serialisation."""

import pytest

from repro.util.urls import Url, https, origin_of, parse_url


class TestParse:
    def test_full_url(self):
        url = parse_url("https://www.foo.com/ads/tag.js?id=9")
        assert url.scheme == "https"
        assert url.host == "www.foo.com"
        assert url.port == 443
        assert url.path == "/ads/tag.js"
        assert url.query == "id=9"

    def test_default_path(self):
        assert parse_url("https://example.org").path == "/"

    def test_explicit_port(self):
        assert parse_url("http://localhost:8080/x").port == 8080

    def test_host_lowercased(self):
        assert parse_url("https://EXAMPLE.org/").host == "example.org"

    def test_relative_rejected(self):
        with pytest.raises(ValueError):
            parse_url("/just/a/path")

    def test_unsupported_scheme_rejected(self):
        with pytest.raises(ValueError):
            parse_url("ftp://example.org/")

    def test_bad_port_rejected(self):
        with pytest.raises(ValueError):
            parse_url("https://example.org:notaport/")

    def test_round_trip(self):
        raw = "https://www.foo.com/ads/tag.js?id=9"
        assert str(parse_url(raw)) == raw

    def test_round_trip_nondefault_port(self):
        raw = "http://example.org:8080/a"
        assert str(parse_url(raw)) == raw


class TestOrigin:
    def test_default_port_omitted(self):
        assert parse_url("https://example.org/a?b=c").origin == "https://example.org"

    def test_nondefault_port_kept(self):
        assert parse_url("https://example.org:444/").origin == "https://example.org:444"

    def test_origin_of_shorthand(self):
        assert origin_of("https://a.b.c/d") == "https://a.b.c"

    def test_path_does_not_affect_origin(self):
        assert (
            parse_url("https://x.com/1").origin == parse_url("https://x.com/2").origin
        )


class TestUrlType:
    def test_https_constructor(self):
        url = https("cdn.example.com", "/lib.js")
        assert str(url) == "https://cdn.example.com/lib.js"

    def test_with_path(self):
        base = https("example.com")
        assert str(base.with_path("/p", "q=1")) == "https://example.com/p?q=1"

    def test_validation_relative_path(self):
        with pytest.raises(ValueError):
            Url("https", "example.com", 443, "relative")

    def test_validation_empty_host(self):
        with pytest.raises(ValueError):
            Url("https", "", 443)

    def test_validation_uppercase_host(self):
        with pytest.raises(ValueError):
            Url("https", "EXAMPLE.com", 443)

    def test_validation_port_range(self):
        with pytest.raises(ValueError):
            Url("https", "example.com", 0)

    def test_hashable(self):
        assert len({https("a.com"), https("a.com"), https("b.com")}) == 2
