"""Unit tests for the simulated clock and epoch arithmetic."""

import datetime

import pytest

from repro.util.timeline import (
    EPOCH_DURATION,
    SimClock,
    date_of,
    epoch_index,
    timestamp_from_date,
)


class TestTimestampConversion:
    def test_origin_is_zero(self):
        assert timestamp_from_date(2024, 3, 30) == 0

    def test_one_day(self):
        assert timestamp_from_date(2024, 3, 31) == 86_400

    def test_before_origin_is_negative(self):
        assert timestamp_from_date(2023, 6, 16) < 0

    def test_round_trip(self):
        ts = timestamp_from_date(2024, 10, 17)
        assert date_of(ts) == datetime.date(2024, 10, 17)

    def test_date_of_mid_epoch(self):
        assert date_of(3600) == datetime.date(2024, 3, 30)


class TestEpochIndex:
    def test_epoch_zero(self):
        assert epoch_index(0) == 0
        assert epoch_index(EPOCH_DURATION - 1) == 0

    def test_epoch_boundaries(self):
        assert epoch_index(EPOCH_DURATION) == 1
        assert epoch_index(3 * EPOCH_DURATION) == 3

    def test_negative_epochs_floor(self):
        assert epoch_index(-1) == -1
        assert epoch_index(-EPOCH_DURATION) == -1
        assert epoch_index(-EPOCH_DURATION - 1) == -2

    def test_epoch_is_one_week(self):
        assert EPOCH_DURATION == 7 * 24 * 3600


class TestSimClock:
    def test_starts_at_zero(self):
        assert SimClock().now() == 0

    def test_advance(self):
        clock = SimClock()
        assert clock.advance(10) == 10
        assert clock.now() == 10

    def test_advance_rejects_negative(self):
        with pytest.raises(ValueError):
            SimClock().advance(-1)

    def test_advance_to_forward_only(self):
        clock = SimClock()
        clock.advance_to(100)
        assert clock.now() == 100
        clock.advance_to(50)  # no-op: never move backwards
        assert clock.now() == 100

    def test_epoch_property(self):
        clock = SimClock()
        assert clock.epoch == 0
        clock.advance(EPOCH_DURATION * 2 + 5)
        assert clock.epoch == 2
