"""Unit tests for the span layer: recorder, profiler, progress tracker."""

import json

import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis.profile_report import profile_spans, render_profile
from repro.obs import (
    NULL_RECORDER,
    NullSpanRecorder,
    ProgressTracker,
    SpanRecorder,
    build_profile,
    critical_path,
    stage_breakdown,
    straggler_report,
)
from repro.obs.profile import (
    REASON_BALANCED,
    REASON_RETRIES,
    REASON_SLICE,
    observe_stage_histograms,
    slow_visits,
)
from repro.obs.spans import (
    SPAN_NAVIGATE,
    SPAN_SHARD,
    SPAN_VISIT,
    Span,
    iter_span_tree,
)
from repro.obs.metrics import MetricsRegistry
from repro.util.timeline import SimClock


class TestSpanRecorder:
    def test_enter_exit_builds_parent_child_links(self):
        rec = SpanRecorder()
        root = rec.enter("campaign", at=0.0)
        child = rec.enter("visit", at=1.0, domain="a.com")
        rec.exit(at=3.0, ok=True)
        rec.exit(at=5.0)
        spans = {s.name: s for s in rec.spans()}
        assert spans["visit"].parent_id == root
        assert spans["visit"].span_id == child
        assert spans["campaign"].parent_id is None
        assert spans["visit"].fields == {"domain": "a.com", "ok": True}
        assert spans["visit"].duration == 2.0

    def test_record_leaf_nests_under_open_span(self):
        rec = SpanRecorder()
        visit = rec.enter("visit", at=0.0)
        leaf = rec.record(SPAN_NAVIGATE, 0.0, 1.5, domain="a.com")
        rec.exit(at=2.0)
        assert leaf.parent_id == visit
        assert leaf.duration == 1.5

    def test_exit_without_enter_raises(self):
        with pytest.raises(RuntimeError):
            SpanRecorder().exit(at=1.0)

    def test_common_fields_tag_every_span(self):
        rec = SpanRecorder(common_fields={"shard": 2})
        rec.enter("shard", at=0.0)
        rec.record("visit", 0.0, 1.0, domain="a.com")
        rec.exit(at=1.0)
        assert all(s.fields["shard"] == 2 for s in rec.spans())

    def test_span_context_manager_uses_the_clock(self):
        rec, clock = SpanRecorder(), SimClock()
        with rec.span("visit", clock, domain="a.com"):
            clock.advance(2)
        (span,) = rec.spans()
        assert (span.start, span.end) == (0.0, 2.0)

    def test_listener_fires_per_completed_span(self):
        seen = []
        rec = SpanRecorder(listener=seen.append)
        rec.enter("visit", at=0.0)
        rec.record("navigate", 0.0, 1.0)
        rec.exit(at=1.0)
        assert [s.name for s in seen] == ["navigate", "visit"]

    def test_ring_buffer_drops_oldest_and_counts(self):
        rec = SpanRecorder(capacity=3)
        for index in range(7):
            rec.record("visit", index, index + 1)
        assert len(rec) == 3
        assert rec.recorded == 7
        assert rec.dropped == 4
        meta = rec.meta()
        assert (meta.recorded, meta.dropped, meta.capacity) == (7, 4, 3)

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            SpanRecorder(capacity=0)

    def test_adopt_remaps_ids_and_skips_listener(self):
        shard = SpanRecorder(common_fields={"shard": 0})
        root = shard.enter("shard", at=0.0)
        shard.record("visit", 0.0, 1.0, domain="a.com")
        shard.exit(at=1.0)

        seen = []
        parent = SpanRecorder(listener=seen.append)
        campaign = parent.enter("campaign", at=0.0)
        id_map = {}
        for span in sorted(shard, key=lambda s: (s.start, s.span_id)):
            mapped_parent = id_map.get(span.parent_id, campaign)
            id_map[span.span_id] = parent.adopt(span, parent_id=mapped_parent)
        parent.exit(at=1.0)
        assert seen == [s for s in parent.spans() if s.name == "campaign"]
        adopted = {s.name: s for s in parent.spans()}
        assert adopted["shard"].parent_id == campaign
        assert adopted["visit"].parent_id == adopted["shard"].span_id

    def test_jsonl_round_trip_with_meta(self, tmp_path):
        rec = SpanRecorder()
        rec.enter("campaign", at=0.0, targets=2)
        rec.record("visit", 0.0, 1.0, domain="a.com")
        rec.exit(at=1.0)
        path = tmp_path / "spans.jsonl"
        rec.to_jsonl(path)
        spans = SpanRecorder.read_jsonl(path)
        assert spans == rec.spans_by_start()
        meta = SpanRecorder.read_meta(path)
        assert (meta.recorded, meta.dropped) == (2, 0)

    def test_chrome_trace_is_valid_and_balanced(self, tmp_path):
        rec = SpanRecorder()
        rec.enter("campaign", at=0.0)
        rec.enter("visit", at=0.0, shard=1)
        rec.record("navigate", 0.0, 1.0, shard=1)
        rec.exit(at=1.0)
        rec.exit(at=1.0)
        path = tmp_path / "trace.json"
        rec.to_chrome_trace(path)
        data = json.loads(path.read_text())
        events = data["traceEvents"]
        assert events
        stacks = {}
        for event in events:
            assert event["ph"] in ("B", "E")
            assert "ts" in event and "name" in event
            stack = stacks.setdefault((event["pid"], event["tid"]), [])
            if event["ph"] == "B":
                stack.append(event["name"])
            else:
                assert stack and stack[-1] == event["name"]
                stack.pop()
        assert all(not stack for stack in stacks.values())
        # shard-tagged spans land on their own thread.
        assert {tid for _, tid in stacks} == {0, 2}

    def test_null_recorder_is_inert(self):
        assert NULL_RECORDER.enabled is False
        assert NULL_RECORDER.enter("visit", at=0.0) == -1
        assert NULL_RECORDER.exit(at=1.0) is None
        assert NULL_RECORDER.record("visit", 0.0, 1.0) is None
        assert len(NULL_RECORDER) == 0
        assert isinstance(NULL_RECORDER, NullSpanRecorder)


def _shard_tree(
    rec: SpanRecorder,
    shard: int,
    start: float,
    visit_durations: list[float],
    retries: int = 0,
) -> None:
    rec.enter(SPAN_SHARD, at=start, shard=shard)
    cursor = start
    for duration in visit_durations:
        rec.enter(SPAN_VISIT, at=cursor, shard=shard, domain=f"s{shard}.com")
        rec.record(SPAN_NAVIGATE, cursor, cursor + duration, shard=shard)
        cursor += duration
        rec.exit(at=cursor)
    for attempt in range(retries):
        rec.record("retry", cursor, cursor, shard=shard, attempt=attempt + 1)
    rec.exit(at=cursor)


class TestProfiler:
    def test_stage_breakdown_orders_by_total(self):
        rec = SpanRecorder()
        _shard_tree(rec, 0, 0.0, [2.0, 1.0])
        stats = {s.name: s for s in stage_breakdown(rec.spans())}
        assert stats["visit"].count == 2
        assert stats["visit"].total == 3.0
        assert stats["visit"].p50 == pytest.approx(1.5)
        assert stats["visit"].max == 2.0
        totals = [s.total for s in stage_breakdown(rec.spans())]
        assert totals == sorted(totals, reverse=True)

    def test_critical_path_descends_into_latest_child(self):
        rec = SpanRecorder()
        _shard_tree(rec, 0, 0.0, [1.0, 2.0])
        path = critical_path(rec.spans())
        assert [s.name for s in path] == ["shard", "visit", "navigate"]
        assert path[-1].end == 3.0

    def test_straggler_named_by_finish_time(self):
        rec = SpanRecorder()
        _shard_tree(rec, 0, 0.0, [1.0, 1.0])
        _shard_tree(rec, 1, 0.0, [1.0, 1.0, 1.0, 1.0])
        report = straggler_report(rec.spans())
        assert report.straggler.shard == 1
        assert report.straggler.finished_at == 4.0
        assert report.reason == REASON_SLICE

    def test_straggler_blamed_on_retries(self):
        rec = SpanRecorder()
        _shard_tree(rec, 0, 0.0, [1.0, 1.0])
        _shard_tree(rec, 1, 0.0, [1.0, 1.0, 0.5], retries=3)
        report = straggler_report(rec.spans())
        assert report.straggler.shard == 1
        assert report.reason == REASON_RETRIES

    def test_balanced_shards(self):
        rec = SpanRecorder()
        _shard_tree(rec, 0, 0.0, [1.0, 1.0])
        _shard_tree(rec, 1, 0.0, [1.0, 1.0])
        report = straggler_report(rec.spans())
        assert report.reason == REASON_BALANCED

    def test_unsharded_campaign_has_no_straggler(self):
        rec = SpanRecorder()
        rec.enter("campaign", at=0.0)
        rec.record(SPAN_VISIT, 0.0, 1.0, domain="a.com")
        rec.exit(at=1.0)
        assert straggler_report(rec.spans()) is None

    def test_slow_visits_rank_and_dominant_stage(self):
        rec = SpanRecorder()
        _shard_tree(rec, 0, 0.0, [1.0, 3.0, 2.0])
        report = slow_visits(rec.spans(), top_n=2)
        assert report.considered == 3
        assert [v.duration for v in report.visits] == [3.0, 2.0]
        assert report.visits[0].dominant_stage == SPAN_NAVIGATE

    def test_stage_histograms_feed_metrics(self):
        rec = SpanRecorder()
        _shard_tree(rec, 0, 0.0, [1.0])
        metrics = MetricsRegistry()
        observe_stage_histograms(rec.spans(), metrics)
        snapshot = metrics.snapshot()
        assert snapshot.histogram("stage_seconds", stage="visit").count == 1
        assert snapshot.histogram("stage_seconds", stage="navigate").count == 1

    def test_build_profile_and_render(self):
        rec = SpanRecorder()
        _shard_tree(rec, 0, 0.0, [1.0, 2.0])
        _shard_tree(rec, 1, 0.0, [1.0, 1.0, 1.0, 1.0])
        profile = build_profile(rec.spans())
        assert profile.span_count == len(rec)
        assert profile.wall_seconds == 4.0
        rendered = render_profile(profile)
        assert "stage breakdown" in rendered
        assert "straggler" in rendered
        assert "shard 1" in rendered
        assert profile_spans(rec.spans()) == rendered


class TestProgressTracker:
    def _visit(self, shard=None, phase="before-accept") -> Span:
        fields = {"phase": phase}
        if shard is not None:
            fields["shard"] = shard
        return Span(0, None, SPAN_VISIT, 0.0, 1.0, fields)

    def test_counts_before_accept_visits(self):
        ticks = iter(range(100))
        tracker = ProgressTracker(
            10, stream=_Sink(), min_interval=0.0, time_fn=lambda: next(ticks)
        )
        tracker(self._visit())
        tracker(self._visit(phase="after-accept"))
        assert "1/10 sites" in tracker.render_line()

    def test_ignores_non_visit_spans(self):
        tracker = ProgressTracker(5, stream=_Sink(), time_fn=lambda: 0.0)
        tracker(Span(0, None, SPAN_NAVIGATE, 0.0, 1.0, {}))
        assert "0/5 sites" in tracker.render_line()

    def test_shard_columns_and_eta(self):
        clock = [0.0]
        tracker = ProgressTracker(
            4,
            shard_sizes={0: 2, 1: 2},
            stream=_Sink(),
            min_interval=0.0,
            time_fn=lambda: clock[0],
        )
        clock[0] = 1.0
        tracker(self._visit(shard=0))
        tracker(self._visit(shard=0))
        line = tracker.render_line()
        assert "2/4 sites" in line
        assert "shards 0:100% 1:0%" in line
        assert "ETA" in line

    def test_render_is_rate_limited_but_finish_always_writes(self):
        sink = _Sink()
        tracker = ProgressTracker(
            10, stream=sink, min_interval=1e9, time_fn=lambda: 0.0
        )
        for _ in range(5):
            tracker(self._visit())
        written_before = tracker.lines_written
        tracker.finish()
        assert tracker.lines_written == written_before + 1
        assert sink.data.endswith("\n")


class _Sink:
    """Minimal text stream capturing writes."""

    def __init__(self) -> None:
        self.data = ""

    def write(self, text: str) -> None:
        self.data += text

    def flush(self) -> None:
        pass


# -- property test: recorded trees are always well-nested ------------------------

_actions = st.lists(
    st.tuples(st.sampled_from(["enter", "exit", "record"]), st.floats(0, 100)),
    max_size=60,
)


class TestWellNestedProperty:
    @settings(max_examples=60, deadline=None)
    @given(_actions)
    def test_span_trees_are_well_nested(self, actions):
        """Any enter/exit/record sequence yields a well-nested forest:
        every child's interval lies within its parent's, and the tree
        walk visits every span exactly once."""
        rec = SpanRecorder()
        time = 0.0
        for action, delta in actions:
            time += delta
            if action == "enter":
                rec.enter("span", at=time)
            elif action == "record":
                rec.record("leaf", time, time + 1.0)
            elif rec.open_depth:
                rec.exit(at=time)
        while rec.open_depth:
            time += 1.0
            rec.exit(at=time)

        spans = rec.spans()
        by_id = {span.span_id: span for span in spans}
        for span in spans:
            if span.parent_id is not None:
                parent = by_id[span.parent_id]
                assert parent.start <= span.start
                assert span.start <= span.end
                # enter/exit children close before their parent; record
                # leaves are stamped by the caller and may overhang, but
                # never start before the parent opened.
                if span.name == "span":
                    assert span.end <= parent.end
        assert sorted(s.span_id for s in iter_span_tree(spans)) == sorted(
            s.span_id for s in spans
        )
