"""The report portal: determinism, degradation, self-containment, CLI.

The portal's contract has four legs:

* **byte-determinism** — the same archive renders the same site, twice
  in a row and across execution backends (serial vs process), because
  the archives themselves are byte-identical;
* **graceful degradation** — a bare archive (no trace, metrics, spans,
  checkpoints, or metamorphic verdicts) renders a complete site whose
  optional pages carry explicit "not captured" notes, never a crash;
* **self-containment** — every href/src resolves inside the output
  directory and nothing references the network;
* **CLI** — ``repro report`` and ``repro crawl --report-out`` both
  produce the site in-process.
"""

import importlib.util
from pathlib import Path

import pytest

from repro.cli import main
from repro.crawler.archive import save_crawl
from repro.crawler.parallel import ShardedCrawl
from repro.report.bench import history_series, load_history
from repro.report.html import NAV_PAGES
from repro.report.site import build_site, generate_report, resolve_history
from repro.validate.artifacts import CrawlArtifacts
from repro.web.config import WorldConfig
from repro.web.generator import WebGenerator

TINY_SITES = 240

_PAGES = tuple(filename for filename, _ in NAV_PAGES)


def _load_script(name: str):
    path = Path(__file__).resolve().parent.parent / "scripts" / name
    spec = importlib.util.spec_from_file_location(name.removesuffix(".py"), path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


@pytest.fixture(scope="module")
def tiny_world():
    return WebGenerator(WorldConfig.small(TINY_SITES, seed=11)).generate()


@pytest.fixture(scope="module")
def instrumented_archive(tmp_path_factory):
    """A fully instrumented campaign archived with every optional artefact."""
    out = tmp_path_factory.mktemp("portal") / "arc"
    assert main(
        [
            "crawl", "--sites", str(TINY_SITES), "--seed", "11",
            "--shards", "3", "--out", str(out),
            "--trace-out", str(out / "trace.jsonl"),
            "--metrics-out", str(out / "metrics.json"),
            "--span-out", str(out / "spans.jsonl"),
            "--checkpoint-dir", str(out / "checkpoints"),
        ]
    ) == 0
    return out


@pytest.fixture(scope="module")
def bare_archive(tiny_world, tmp_path_factory):
    """The same campaign archived with no optional artefacts at all."""
    out = tmp_path_factory.mktemp("bare") / "arc"
    save_crawl(ShardedCrawl(tiny_world, shard_count=3).run(), out)
    return out


def _site_bytes(directory: Path) -> dict[str, bytes]:
    return {
        page.name: page.read_bytes() for page in sorted(directory.glob("*.html"))
    }


class TestDeterminism:
    def test_two_builds_are_byte_identical(self, instrumented_archive, tmp_path):
        first = generate_report(instrumented_archive, out=tmp_path / "a")
        second = generate_report(instrumented_archive, out=tmp_path / "b")
        assert set(_site_bytes(first)) == set(_PAGES)
        assert _site_bytes(first) == _site_bytes(second)

    def test_serial_and_process_backends_render_identically(
        self, tiny_world, tmp_path
    ):
        # Same archive *name* on both sides: the page title embeds it.
        for backend in ("serial", "process"):
            result = ShardedCrawl(
                tiny_world, shard_count=3, backend=backend
            ).run()
            save_crawl(result, tmp_path / backend / "arc")
            generate_report(
                tmp_path / backend / "arc", out=tmp_path / backend / "site"
            )
        assert _site_bytes(tmp_path / "serial" / "site") == _site_bytes(
            tmp_path / "process" / "site"
        )


class TestDegradation:
    def test_bare_archive_renders_every_page(self, bare_archive, tmp_path):
        # Explicit missing history: otherwise the repo-level seed
        # benchmarks/history.jsonl feeds the bench page via fallback.
        site = generate_report(
            bare_archive,
            out=tmp_path / "site",
            history=tmp_path / "no-history.jsonl",
        )
        pages = _site_bytes(site)
        assert set(pages) == set(_PAGES)
        for name in ("profile.html", "bench.html"):
            assert b"not captured" in pages[name]
        # health: trace AND metrics both absent → two notes.
        assert pages["health.html"].count(b"not captured") == 2
        # validation: the audit still runs; metamorphic is the absent leg.
        assert b"not captured" in pages["validation.html"]
        assert b"Audit verdict" in pages["validation.html"]

    @pytest.mark.parametrize(
        "removed, page_name",
        [
            ("trace.jsonl", "health.html"),
            ("metrics.json", "health.html"),
            ("spans.jsonl", "profile.html"),
        ],
    )
    def test_each_absent_artifact_renders_a_note(
        self, instrumented_archive, tmp_path, removed, page_name
    ):
        # Rebuild the bundle with one artefact pointed at a missing path
        # (equivalent to the file never having been exported).
        pruned = tmp_path / "pruned"
        pruned.mkdir()
        for artefact in instrumented_archive.iterdir():
            if artefact.name in (removed, "checkpoints", "report"):
                continue
            if artefact.is_file():
                (pruned / artefact.name).write_bytes(artefact.read_bytes())
        site = generate_report(pruned, out=tmp_path / "site")
        assert b"not captured" in (site / page_name).read_bytes()

    def test_instrumented_profile_and_health_have_no_notes(
        self, instrumented_archive, tmp_path
    ):
        site = generate_report(instrumented_archive, out=tmp_path / "site")
        assert b"not captured" not in (site / "profile.html").read_bytes()
        health = (site / "health.html").read_bytes()
        assert b"not captured" not in health
        assert b"Counter cross-checks" in health
        assert b"MISMATCH" not in health


class TestSelfContainment:
    def test_link_checker_passes(self, instrumented_archive, tmp_path):
        site = generate_report(instrumented_archive, out=tmp_path / "site")
        checker = _load_script("check_report_links.py")
        assert checker.check_site(site) == []

    def test_no_external_references_or_scripts(
        self, instrumented_archive, tmp_path
    ):
        site = generate_report(instrumented_archive, out=tmp_path / "site")
        for page in site.glob("*.html"):
            text = page.read_text()
            assert "<script" not in text
            assert 'href="http' not in text and 'src="http' not in text

    def test_link_checker_flags_external_and_broken(self, tmp_path):
        site = tmp_path / "site"
        site.mkdir()
        (site / "index.html").write_text(
            '<a href="https://example.com">x</a><img src="missing.png">'
        )
        checker = _load_script("check_report_links.py")
        problems = checker.check_site(site)
        assert any("external" in p for p in problems)
        assert any("broken" in p for p in problems)
        assert checker.main([str(site)]) == 1


class TestBenchPage:
    def test_history_feeds_the_trajectory(self, bare_archive, tmp_path):
        history = tmp_path / "history.jsonl"
        history.write_text(
            '{"benchmark": "test_crawl_throughput", "visits_per_second": '
            '50000.0, "baseline": 48000.0, "commit": "abc123"}\n'
            '{"benchmark": "test_crawl_throughput", "visits_per_second": '
            '52000.0, "baseline": 48000.0, "commit": "def456"}\n'
        )
        site = generate_report(bare_archive, out=tmp_path / "site", history=history)
        bench = (site / "bench.html").read_text()
        assert "test_crawl_throughput" in bench
        assert "not captured" not in bench
        assert "<svg" in bench

    def test_resolve_history_prefers_archive_copy(self, tmp_path):
        archive = tmp_path / "arc"
        archive.mkdir()
        assert resolve_history(archive, tmp_path / "x.jsonl") == tmp_path / "x.jsonl"
        (archive / "history.jsonl").write_text("")
        assert resolve_history(archive) == archive / "history.jsonl"

    def test_history_grouping(self):
        records = [
            {"benchmark": "b", "visits_per_second": 1.0},
            {"benchmark": "a", "visits_per_second": 2.0},
            {"benchmark": "b", "visits_per_second": 3.0},
        ]
        series = history_series(records)
        assert list(series) == ["a", "b"]
        assert [r["visits_per_second"] for r in series["b"]] == [1.0, 3.0]

    def test_load_history_tolerates_absence(self, tmp_path):
        assert load_history(None) == []
        assert load_history(tmp_path / "missing.jsonl") == []
        empty = tmp_path / "empty.jsonl"
        empty.write_text("")
        assert load_history(empty) == []


class TestCli:
    def test_report_command(self, capsys, instrumented_archive, tmp_path):
        out = tmp_path / "site"
        assert main(
            ["report", str(instrumented_archive), "--out", str(out)]
        ) == 0
        assert "report portal" in capsys.readouterr().out
        assert set(_site_bytes(out)) == set(_PAGES)

    def test_report_default_output_dir(self, bare_archive, capsys):
        assert main(["report", str(bare_archive)]) == 0
        capsys.readouterr()
        assert (bare_archive / "report" / "index.html").exists()

    def test_crawl_report_out(self, capsys, tmp_path):
        out_dir = tmp_path / "campaign"
        site_dir = tmp_path / "site"
        assert main(
            [
                "crawl", "--sites", str(TINY_SITES), "--seed", "11",
                "--out", str(out_dir),
                "--metrics-out", str(out_dir / "metrics.json"),
                "--span-out", str(out_dir / "spans.jsonl"),
                "--report-out", str(site_dir),
            ]
        ) == 0
        assert "report portal" in capsys.readouterr().out
        assert set(_site_bytes(site_dir)) == set(_PAGES)
        # The exported artefacts made it into the portal, not the notes.
        assert b"not captured" not in (site_dir / "profile.html").read_bytes()


class TestSiteStructure:
    def test_every_page_links_all_pages(self, bare_archive, tmp_path):
        site = generate_report(bare_archive, out=tmp_path / "site")
        for page in _PAGES:
            text = (site / page).read_text()
            for other in _PAGES:
                assert f'href="{other}"' in text

    def test_build_site_in_memory(self, bare_archive):
        artifacts = CrawlArtifacts.load(bare_archive)
        site = build_site(artifacts)
        assert set(site.pages) == set(_PAGES)
        assert site.title.endswith(bare_archive.name)
