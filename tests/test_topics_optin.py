"""Tests for the Topics opt-in switch (the paper's §2.2 manual opt-in)."""

import pytest

from repro.attestation.allowlist import AllowList, AllowListDatabase
from repro.browser.browser import Browser
from repro.browser.context import root_context_for
from repro.browser.topics.api import TopicsApi
from repro.browser.topics.manager import (
    BrowsingTopicsSiteDataManager,
    TopicsApiDisabledError,
)
from repro.browser.topics.selection import EpochTopicsSelector
from repro.browser.topics.types import ApiCallType
from repro.taxonomy.classifier import SiteClassifier
from repro.util.urls import https


def make_manager(topics_enabled: bool) -> BrowsingTopicsSiteDataManager:
    return BrowsingTopicsSiteDataManager(
        EpochTopicsSelector(SiteClassifier(), user_seed=1),
        AllowListDatabase.from_allowlist(AllowList.of(["criteo.com"])),
        topics_enabled=topics_enabled,
    )


class TestManagerSwitch:
    def test_disabled_rejects(self):
        manager = make_manager(topics_enabled=False)
        with pytest.raises(TopicsApiDisabledError):
            manager.handle_topics_call(
                "bid.criteo.com", "news.com", ApiCallType.JAVASCRIPT, 0
            )
        assert manager.call_count == 0  # a rejection is not a logged call

    def test_enabled_default(self):
        manager = make_manager(topics_enabled=True)
        manager.handle_topics_call(
            "bid.criteo.com", "news.com", ApiCallType.JAVASCRIPT, 0
        )
        assert manager.call_count == 1

    def test_js_surface_propagates_rejection(self):
        api = TopicsApi(make_manager(topics_enabled=False))
        root = root_context_for(https("www.example.org"))
        frame = root.open_iframe(https("frame.criteo.com"))
        with pytest.raises(TopicsApiDisabledError):
            api.document_browsing_topics(frame, now=0)


class TestBrowserWithoutOptIn:
    def test_visits_work_but_produce_no_calls(self, world):
        browser = Browser(world, corrupt_allowlist=True, topics_enabled=False)
        produced = 0
        for site in world.websites[:300]:
            if not site.reachable:
                continue
            outcome = browser.visit(site.domain, consent_granted=True)
            assert outcome.ok
            produced += len(outcome.topics_calls)
        assert produced == 0

    def test_page_loading_unaffected(self, world):
        enabled = Browser(world, corrupt_allowlist=True, topics_enabled=True)
        disabled = Browser(world, corrupt_allowlist=True, topics_enabled=False)
        site = next(
            s for s in world.websites if s.reachable and s.redirect_to is None
        )
        with_topics = enabled.visit(site.domain, consent_granted=True)
        without = disabled.visit(site.domain, consent_granted=True)
        # Ad helper frames differ, but the page's own tags load the same.
        page_hosts = {
            host
            for host in with_topics.loaded_hosts
            if not host.startswith(("frame.", "bid.", "ads."))
        }
        assert page_hosts <= without.loaded_hosts | page_hosts
        assert without.ok
