"""Unit tests for the enrolment registry and its timeline."""

import datetime

import pytest

from repro.attestation.registry import (
    Enrollment,
    EnrollmentRegistry,
    FIRST_ENROLLMENT_AT,
    MIGRATION_AT,
)
from repro.attestation.wellknown import (
    AttestationValidationError,
    validate_attestation_json,
)
from repro.util.rng import RngStream
from repro.util.timeline import date_of, timestamp_from_date


@pytest.fixture
def registry() -> EnrollmentRegistry:
    return EnrollmentRegistry.build(
        rng=RngStream(3, "enroll"),
        allowed_domains=[f"svc{i}.com" for i in range(20)],
        unattested_allowed=["svc0.com", "svc1.com"],
        attested_not_allowed=["distillery.com"],
    )


class TestConstruction:
    def test_counts(self, registry):
        assert len(registry.allowed_domains()) == 20
        # 18 allowed-and-attested plus the one attested-not-allowed party.
        assert len(registry.attested_domains()) == 19

    def test_unattested_must_be_subset(self):
        with pytest.raises(ValueError):
            EnrollmentRegistry.build(
                rng=RngStream(1),
                allowed_domains=["a.com"],
                unattested_allowed=["other.com"],
            )

    def test_duplicate_enrollment_rejected(self):
        record = Enrollment("a.com", 0, True, True)
        with pytest.raises(ValueError):
            EnrollmentRegistry([record, record])

    def test_lookup(self, registry):
        assert "svc3.com" in registry
        assert registry.enrollment("svc3.com").in_allowlist
        assert registry.enrollment("nope.com") is None


class TestStatusFlags:
    def test_allowed_and_attested(self, registry):
        assert registry.is_allowed("svc5.com")
        assert registry.is_attested("svc5.com")

    def test_unattested_allowed(self, registry):
        assert registry.is_allowed("svc0.com")
        assert not registry.is_attested("svc0.com")

    def test_distillery_case(self, registry):
        # The paper's footnote-9 party: attestation file from Nov 2023 yet
        # never in the allow-list.
        assert not registry.is_allowed("distillery.com")
        assert registry.is_attested("distillery.com")
        record = registry.enrollment("distillery.com")
        assert date_of(record.enrolled_at).year == 2023
        assert date_of(record.enrolled_at).month == 11

    def test_allowlist_artifact(self, registry):
        allowlist = registry.allowlist()
        assert "svc7.com" in allowlist
        assert "distillery.com" not in allowlist


class TestServedPayloads:
    def test_attested_party_serves_valid_file(self, registry):
        payload = registry.attestation_payload("svc5.com", now=0)
        assert payload is not None
        summary = validate_attestation_json("svc5.com", payload)
        assert summary["attests_topics"]

    def test_unattested_party_serves_nothing(self, registry):
        # The paper's 12 erroneous enrollees simply expose no file.
        assert registry.attestation_payload("svc0.com", now=0) is None

    def test_invalid_attestation_rejected_by_validator(self):
        # A party can also serve a structurally broken file; the survey
        # must not count it as Attested.
        registry = EnrollmentRegistry(
            [Enrollment("broken.com", 0, True, True, attestation_valid=False)]
        )
        payload = registry.attestation_payload("broken.com", now=0)
        assert payload is not None
        with pytest.raises(AttestationValidationError):
            validate_attestation_json("broken.com", payload)
        assert not registry.is_attested("broken.com")

    def test_unknown_party_serves_nothing(self, registry):
        assert registry.attestation_payload("unknown.com", now=0) is None

    def test_migration_adds_enrollment_site(self, registry):
        before = registry.attestation_payload("svc5.com", now=MIGRATION_AT - 1)
        after = registry.attestation_payload("svc5.com", now=MIGRATION_AT)
        assert "enrollment_site" not in before
        assert "enrollment_site" in after


class TestTimeline:
    def test_first_enrollment_date(self, registry):
        records = registry.all_enrollments()
        first_allowed = next(r for r in records if r.in_allowlist)
        assert first_allowed.enrolled_at == FIRST_ENROLLMENT_AT
        assert date_of(FIRST_ENROLLMENT_AT) == datetime.date(2023, 6, 16)

    def test_dates_monotonic_for_allowed(self, registry):
        allowed = [r for r in registry.all_enrollments() if r.in_allowlist]
        dates = [r.enrolled_at for r in allowed]
        assert dates == sorted(dates)

    def test_pace_roughly_configured(self):
        registry = EnrollmentRegistry.build(
            rng=RngStream(5),
            allowed_domains=[f"d{i}.com" for i in range(160)],
            per_month=16.0,
        )
        records = [r for r in registry.all_enrollments() if r.in_allowlist]
        span_months = (records[-1].enrolled_at - records[0].enrolled_at) / (
            30 * 24 * 3600
        )
        assert 7 <= span_months <= 14  # 160 enrolments at ~16/month

    def test_migration_constant(self):
        assert date_of(MIGRATION_AT) == datetime.date(2024, 10, 17)
        assert MIGRATION_AT == timestamp_from_date(2024, 10, 17)
