"""End-to-end invariants across world → crawl → analysis.

These tie the whole pipeline together: everything the analysis reports
must be explainable by the generated ground truth, and the headline
*rates* of the paper must hold at reduced scale.
"""

from repro.analysis.anomalous import anomalous_calls
from repro.analysis.pervasiveness import legitimate_callers
from repro.web.site import RogueVariant
from repro.web.thirdparty import active_caller_domains, questionable_caller_domains


class TestGroundTruthConsistency:
    def test_legit_cps_are_catalogue_actives(self, study, crawl):
        legit = legitimate_callers(crawl.allowed_domains, crawl.survey)
        observed = crawl.d_aa.calling_parties() & legit
        assert observed <= set(active_caller_domains())

    def test_ba_legit_cps_are_catalogue_questionables(self, study, crawl):
        legit = legitimate_callers(crawl.allowed_domains, crawl.survey)
        observed = crawl.d_ba.calling_parties() & legit
        assert observed <= set(questionable_caller_domains())

    def test_anomalous_callers_trace_to_rogue_sites(self, crawl, world):
        calls = anomalous_calls(crawl.d_aa, crawl.allowed_domains, crawl.survey)
        for record, _ in calls[:300]:
            site = world.site(record.domain)
            assert site.rogue is not None

    def test_rogue_caller_matches_config(self, crawl, world):
        from repro.util.psl import etld_plus_one

        calls = anomalous_calls(crawl.d_aa, crawl.allowed_domains, crawl.survey)
        for record, call in calls[:300]:
            site = world.site(record.domain)
            expected = etld_plus_one(site.rogue.caller_host)
            assert call.caller == expected

    def test_every_aa_site_accepted_banner(self, crawl, world):
        for record in crawl.d_aa:
            site = world.site(record.domain)
            assert site.banner is not None

    def test_no_calls_from_unreachable_sites(self, crawl, world):
        unreachable = {s.domain for s in world.websites if not s.reachable}
        assert not ({r.domain for r in crawl.d_ba} & unreachable)


class TestPaperRates:
    """Scale-free paper quantities, asserted as bands at 6k sites."""

    def test_accept_rate(self, crawl):
        assert 0.30 <= crawl.report.accept_rate <= 0.40  # paper: 0.339

    def test_failure_rate(self, crawl):
        rate = crawl.report.failed / crawl.report.targets
        assert 0.11 <= rate <= 0.16  # paper: 0.132

    def test_aa_anomalous_cp_rate(self, study, crawl):
        rate = study.table1.aa_not_allowed / len(crawl.d_aa)
        assert 0.14 <= rate <= 0.22  # paper: 2614/14719 ≈ 0.178

    def test_ba_anomalous_cp_rate(self, study, crawl):
        rate = study.table1.ba_not_allowed / len(crawl.d_ba)
        assert 0.02 <= rate <= 0.045  # paper: 1308/43405 ≈ 0.030

    def test_anomalous_calls_per_caller(self, study):
        ratio = study.anomalous.total_calls / study.anomalous.distinct_callers
        assert 1.2 <= ratio <= 1.5  # paper: 3450/2614 ≈ 1.32

    def test_questionable_sites_rate(self, crawl):
        legit = legitimate_callers(crawl.allowed_domains, crawl.survey)
        questionable_sites = {
            record.domain
            for record, call in crawl.d_ba.iter_calls()
            if call.caller in legit
        }
        rate = len(questionable_sites) / len(crawl.d_ba)
        assert 0.02 <= rate <= 0.08  # paper implies ≈0.04

    def test_distillery_only_on_own_site(self, crawl):
        # Footnote 9: "we observe it using the Topics API on the
        # distillery.com website only".
        sites = {
            record.domain
            for record, call in crawl.d_aa.iter_calls()
            if call.caller == "distillery.com"
        }
        assert sites == {"distillery.com"}


class TestAblations:
    def test_healthy_allowlist_hides_anomalous_usage(self, healthy_crawl):
        calls = anomalous_calls(
            healthy_crawl.d_aa,
            healthy_crawl.allowed_domains,
            healthy_crawl.survey,
        )
        assert calls == []

    def test_healthy_allowlist_keeps_legit_usage(self, healthy_crawl, crawl):
        legit = legitimate_callers(
            healthy_crawl.allowed_domains, healthy_crawl.survey
        )
        healthy_legit_cps = healthy_crawl.d_aa.calling_parties() & legit
        corrupt_legit_cps = crawl.d_aa.calling_parties() & legit
        assert healthy_legit_cps == corrupt_legit_cps

    def test_blocked_attempts_still_logged_by_instrumentation(self, healthy_crawl):
        # The modified handler logs attempts even when gating blocks them.
        blocked = [
            call
            for _, call in healthy_crawl.d_aa.iter_calls()
            if not call.allowed
        ]
        assert blocked

    def test_redirect_sites_attributed_to_requested_domain(self, crawl, world):
        redirecting = [
            s.domain
            for s in world.websites
            if s.reachable and s.rogue and s.rogue.variant is RogueVariant.REDIRECT
        ]
        for domain in redirecting[:20]:
            record = crawl.d_ba.by_domain(domain)
            assert record is not None
            assert record.redirected
