"""Graceful degradation of the obs/profile reports on absent artefacts.

An uninstrumented or interrupted campaign leaves no trace, metrics, or
span files behind.  The section renderers must say "not captured" for
every such combination — a missing artefact is a fact to report, not an
error to raise.  A present-but-corrupt file still raises: that is
corruption, and silently skipping it would hide real damage.
"""

import json

import pytest

from repro.analysis.obs_report import (
    load_snapshot,
    load_trace_meta,
    render_metrics_section,
    render_trace_section,
)
from repro.analysis.profile_report import (
    NOT_CAPTURED_PROFILE,
    load_spans,
    main as profile_main,
    render_profile_section,
)
from repro.obs import MetricsRegistry, SpanRecorder, Tracer


def _metrics_file(path):
    registry = MetricsRegistry()
    registry.counter("browser_visits_total", outcome="ok")
    registry.gauge("crawl_duration_seconds", 10.0)
    registry.snapshot().save(path)
    return path


def _span_file(path):
    recorder = SpanRecorder()
    recorder.enter("campaign", at=0.0)
    recorder.enter("visit", at=1.0, domain="a.com")
    recorder.exit(at=3.0)
    recorder.exit(at=5.0)
    recorder.to_jsonl(path)
    return path


def _trace_file(path):
    tracer = Tracer()
    tracer.emit("visit-started", at=1)
    tracer.to_jsonl(path)
    return path


class TestMetricsSection:
    @pytest.mark.parametrize("case", ["none", "missing", "empty"])
    def test_absent_snapshot_is_none(self, tmp_path, case):
        if case == "none":
            path = None
        elif case == "missing":
            path = tmp_path / "metrics.json"
        else:
            path = tmp_path / "metrics.json"
            path.write_text("")
        assert load_snapshot(path) is None

    def test_absent_renders_not_captured(self):
        section = render_metrics_section(None)
        assert "not captured" in section
        assert "--metrics-out" in section

    def test_corrupt_snapshot_still_raises(self, tmp_path):
        path = tmp_path / "metrics.json"
        path.write_text("{not json")
        with pytest.raises(json.JSONDecodeError):
            load_snapshot(path)

    def test_present_snapshot_renders_report(self, tmp_path):
        snapshot = load_snapshot(_metrics_file(tmp_path / "metrics.json"))
        section = render_metrics_section(snapshot)
        assert "Campaign metrics" in section
        assert "not captured" not in section


class TestTraceSection:
    @pytest.mark.parametrize("case", ["none", "missing", "empty"])
    def test_absent_trace(self, tmp_path, case):
        if case == "none":
            path = None
        elif case == "missing":
            path = tmp_path / "trace.jsonl"
        else:
            path = tmp_path / "trace.jsonl"
            path.write_text("")
        captured, meta = load_trace_meta(path)
        assert captured is False and meta is None
        assert "not captured" in render_trace_section(path)

    def test_present_trace_renders_health(self, tmp_path):
        path = _trace_file(tmp_path / "trace.jsonl")
        section = render_trace_section(path)
        assert "complete" in section
        assert "not captured" not in section


class TestProfileSection:
    @pytest.mark.parametrize("case", ["none", "missing", "empty"])
    def test_absent_spans(self, tmp_path, case):
        if case == "none":
            path = None
        elif case == "missing":
            path = tmp_path / "spans.jsonl"
        else:
            path = tmp_path / "spans.jsonl"
            path.write_text("")
        spans, meta = load_spans(path)
        assert spans is None and meta is None

    def test_absent_renders_not_captured(self):
        assert render_profile_section(None) == NOT_CAPTURED_PROFILE
        assert render_profile_section([]) == NOT_CAPTURED_PROFILE

    def test_present_spans_render_profile(self, tmp_path):
        spans, meta = load_spans(_span_file(tmp_path / "spans.jsonl"))
        assert spans and meta is not None
        section = render_profile_section(spans)
        assert "Campaign profile" in section
        assert "not captured" not in section

    def test_cli_tolerates_missing_file(self, capsys, tmp_path):
        assert profile_main([str(tmp_path / "nope.jsonl")]) == 0
        assert "not captured" in capsys.readouterr().out

    def test_cli_renders_present_file(self, capsys, tmp_path):
        path = _span_file(tmp_path / "spans.jsonl")
        assert profile_main([str(path)]) == 0
        assert "Campaign profile" in capsys.readouterr().out


class TestEveryAbsentCombination:
    """All eight (trace, metrics, spans) presence combinations render."""

    @pytest.mark.parametrize("with_trace", [False, True])
    @pytest.mark.parametrize("with_metrics", [False, True])
    @pytest.mark.parametrize("with_spans", [False, True])
    def test_sections_never_raise(
        self, tmp_path, with_trace, with_metrics, with_spans
    ):
        trace = _trace_file(tmp_path / "t.jsonl") if with_trace else None
        metrics = _metrics_file(tmp_path / "m.json") if with_metrics else None
        spans = _span_file(tmp_path / "s.jsonl") if with_spans else None

        trace_section = render_trace_section(trace)
        metrics_section = render_metrics_section(load_snapshot(metrics))
        span_list, _ = load_spans(spans)
        profile_section = render_profile_section(span_list)

        assert ("not captured" in trace_section) is not with_trace
        assert ("not captured" in metrics_section) is not with_metrics
        assert ("not captured" in profile_section) is not with_spans
