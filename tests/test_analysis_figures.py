"""Tests for the figure pipelines (2, 3, 5, 6, 7) on the shared study."""

import pytest

from repro.analysis.abtest import figure3
from repro.analysis.cmp_analysis import average_questionable_rate
from repro.analysis.pervasiveness import (
    legitimate_callers,
    share_of_sites_with_call,
)
from repro.analysis.questionable import figure6
from repro.web.tlds import Region


class TestFigure2:
    def test_top15_by_presence(self, study):
        assert len(study.fig2) == 15
        presences = [row.present_on for row in study.fig2]
        assert presences == sorted(presences, reverse=True)

    def test_google_analytics_present_but_silent(self, study):
        ga = next(r for r in study.fig2 if r.caller == "google-analytics.com")
        assert ga.present_on > 0
        assert ga.called_on == 0

    def test_bing_silent(self, study):
        bing = next(r for r in study.fig2 if r.caller == "bing.com")
        assert bing.called_on == 0

    def test_doubleclick_calls_about_a_third(self, study):
        dbl = next(r for r in study.fig2 if r.caller == "doubleclick.net")
        assert 0.25 <= dbl.call_share <= 0.42

    def test_called_never_exceeds_present(self, study):
        for row in study.fig2:
            assert row.called_on <= row.present_on

    def test_only_legitimate_parties(self, study, crawl):
        legit = legitimate_callers(crawl.allowed_domains, crawl.survey)
        assert all(row.caller in legit for row in study.fig2)

    def test_share_of_sites_with_call_band(self, study):
        # Paper: 45% ("one website every two").
        assert 0.35 <= study.sites_with_call_share <= 0.60

    def test_share_counts_only_given_callers(self, crawl):
        none_share = share_of_sites_with_call(crawl.d_aa, frozenset())
        assert none_share == 0.0
        all_share = share_of_sites_with_call(crawl.d_aa, None)
        assert all_share > 0


class TestFigure3:
    def test_rates_descending(self, study):
        rates = [row.enabled_percent for row in study.fig3]
        assert rates == sorted(rates, reverse=True)

    def test_authorizedvault_near_always(self, study):
        row = next(r for r in study.fig3 if r.caller == "authorizedvault.com")
        assert row.enabled_percent > 88

    def test_criteo_near_75(self, study):
        row = next(r for r in study.fig3 if r.caller == "criteo.com")
        assert 68 <= row.enabled_percent <= 82

    def test_rate_clusters_present(self, study):
        # The paper reads clusters at ~100/75/66/50/33/25% as A/B splits.
        rates = sorted(row.enabled_percent for row in study.fig3)
        assert rates[0] < 45 and rates[-1] > 88

    def test_min_presence_filter(self, crawl):
        rows = figure3(
            crawl.d_aa, crawl.allowed_domains, crawl.survey, min_presence=100
        )
        assert all(row.present_on >= 100 for row in rows)

    def test_enabled_percent_bounds(self, study):
        for row in study.fig3:
            assert 0.0 <= row.enabled_percent <= 100.0


class TestFigure5:
    def test_yandex_tops_questionable(self, study):
        # Paper: "yandex.com comes first".
        assert study.fig5[0].caller in ("yandex.com", "criteo.com")
        callers = [row.caller for row in study.fig5]
        assert "yandex.com" in callers[:2]

    def test_doubleclick_absent(self, study):
        # Paper: "doubleclick.net ... does not perform any call in
        # Before-Accept".
        assert all(row.caller != "doubleclick.net" for row in study.fig5)

    def test_counts_descending(self, study):
        counts = [row.websites for row in study.fig5]
        assert counts == sorted(counts, reverse=True)

    def test_only_legitimate_parties(self, study, crawl):
        legit = legitimate_callers(crawl.allowed_domains, crawl.survey)
        assert all(row.caller in legit for row in study.fig5)


class TestFigure6:
    def test_defaults_to_top4(self, study):
        assert len(study.fig6) == 4
        fig5_top4 = [row.caller for row in study.fig5[:4]]
        assert [row.caller for row in study.fig6] == fig5_top4

    def test_yandex_concentrated_in_ru(self, study):
        yandex = next((r for r in study.fig6 if r.caller == "yandex.com"), None)
        if yandex is None:
            pytest.skip("yandex not in top-4 at this scale")
        assert yandex.present[Region.RU] > yandex.present[Region.EU]
        assert yandex.present[Region.JP] == 0

    def test_enabled_percent_bounds(self, study):
        for row in study.fig6:
            for region in Region:
                assert 0.0 <= row.enabled_percent(region) <= 100.0

    def test_explicit_caller_selection(self, crawl):
        rows = figure6(
            crawl.d_ba,
            crawl.allowed_domains,
            crawl.survey,
            callers=["criteo.com"],
        )
        assert len(rows) == 1 and rows[0].caller == "criteo.com"

    def test_eu_questionable_calls_exist(self, study):
        # Paper: "We even observe questionable API calls also for websites
        # in the EU, where the GDPR definitively applies."
        assert any(row.called.get(Region.EU, 0) > 0 for row in study.fig6)


class TestFigure7:
    def test_catalogue_order(self, study, world):
        assert [row.name for row in study.fig7] == world.cmps.names()

    def test_probabilities_bounded(self, study):
        for row in study.fig7:
            assert 0.0 <= row.p_cmp <= 1.0
            assert 0.0 <= row.p_cmp_given_questionable <= 1.0
            assert 0.0 <= row.p_questionable_given_cmp <= 1.0

    def test_p_cmp_sums_below_one(self, study):
        assert sum(row.p_cmp for row in study.fig7) < 1.0

    def test_onetrust_most_deployed(self, study):
        onetrust = next(r for r in study.fig7 if r.name == "OneTrust")
        assert all(onetrust.p_cmp >= r.p_cmp for r in study.fig7)

    def test_hubspot_overrepresented(self, study):
        hubspot = next(r for r in study.fig7 if r.name == "HubSpot")
        assert hubspot.lift > 1.5

    def test_hubspot_conditional_above_average(self, study):
        hubspot = next(r for r in study.fig7 if r.name == "HubSpot")
        average = average_questionable_rate(study.fig7)
        assert hubspot.p_questionable_given_cmp > 1.5 * average

    def test_liveramp_also_bad(self, study):
        liveramp = next(r for r in study.fig7 if r.name == "LiveRamp")
        ordinary = [
            r.p_questionable_given_cmp
            for r in study.fig7
            if r.name not in ("HubSpot", "LiveRamp") and r.sites_total > 20
        ]
        mean_ordinary = sum(ordinary) / len(ordinary)
        assert liveramp.p_questionable_given_cmp > 1.5 * mean_ordinary
