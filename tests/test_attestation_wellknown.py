"""Unit tests for attestation files and their validation."""

import json

import pytest

from repro.attestation.wellknown import (
    AttestationFile,
    AttestationValidationError,
    WELL_KNOWN_PATH,
    validate_attestation_json,
)
from repro.util.timeline import timestamp_from_date


@pytest.fixture
def attestation() -> AttestationFile:
    return AttestationFile(
        domain="criteo.com",
        issued_at=timestamp_from_date(2023, 7, 1),
        attests_topics=True,
        has_enrollment_site=False,
    )


class TestSerialisation:
    def test_well_known_path(self):
        assert WELL_KNOWN_PATH == "/.well-known/privacy-sandbox-attestations.json"

    def test_valid_json(self, attestation):
        document = json.loads(attestation.to_json())
        assert document["attestation_parser_version"] == "2"

    def test_issue_date_serialised(self, attestation):
        summary = validate_attestation_json("criteo.com", attestation.to_json())
        assert summary["issued"] == "2023-07-01"

    def test_enrollment_site_field(self):
        migrated = AttestationFile(
            domain="criteo.com",
            issued_at=0,
            attests_topics=True,
            has_enrollment_site=True,
        )
        summary = validate_attestation_json("criteo.com", migrated.to_json())
        assert summary["has_enrollment_site"] is True
        assert "https://criteo.com" in migrated.to_json()

    def test_pre_migration_lacks_enrollment_site(self, attestation):
        summary = validate_attestation_json("criteo.com", attestation.to_json())
        assert summary["has_enrollment_site"] is False


class TestValidation:
    def test_round_trip_is_valid(self, attestation):
        summary = validate_attestation_json("criteo.com", attestation.to_json())
        assert summary["attests_topics"] is True

    def test_not_json(self):
        with pytest.raises(AttestationValidationError):
            validate_attestation_json("x.com", "<html>404</html>")

    def test_not_object(self):
        with pytest.raises(AttestationValidationError):
            validate_attestation_json("x.com", "[1, 2]")

    def test_wrong_parser_version(self):
        with pytest.raises(AttestationValidationError):
            validate_attestation_json(
                "x.com", '{"attestation_parser_version": "1", "attestations": []}'
            )

    def test_missing_attestations(self):
        with pytest.raises(AttestationValidationError):
            validate_attestation_json(
                "x.com", '{"attestation_parser_version": "2"}'
            )

    def test_non_attesting_file_invalid(self, attestation):
        payload = attestation.to_json().replace("true", "false")
        with pytest.raises(AttestationValidationError):
            validate_attestation_json("criteo.com", payload)
