"""The bench regression gate's history trajectory (scripts/…py).

Every gated run appends one ``visits_per_second`` record per benchmark
to ``benchmarks/history.jsonl`` through the atomic-write path, so the
report portal's bench page always reads a whole file — never a torn
line from a crashed run.
"""

import importlib.util
import json
from pathlib import Path

import pytest


@pytest.fixture(scope="module")
def gate():
    path = (
        Path(__file__).resolve().parent.parent
        / "scripts"
        / "check_bench_regression.py"
    )
    spec = importlib.util.spec_from_file_location("check_bench_regression", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def _results_file(tmp_path, rate=50_000.0):
    payload = {
        "benchmarks": [
            {
                "name": "test_crawl_throughput",
                "extra_info": {"visits_per_second": rate},
            }
        ]
    }
    path = tmp_path / "bench-results.json"
    path.write_text(json.dumps(payload))
    return path


def _baseline_file(tmp_path, rate=48_000.0):
    path = tmp_path / "baseline.json"
    path.write_text(json.dumps({"test_crawl_throughput": rate}))
    return path


class TestAppendHistory:
    def test_appends_one_record_per_benchmark(self, gate, tmp_path):
        history = tmp_path / "history.jsonl"
        appended = gate.append_history(
            history, {"test_crawl_throughput": 50_000.0}, {"test_crawl_throughput": 48_000.0}
        )
        assert appended == 1
        (record,) = [json.loads(line) for line in history.read_text().splitlines()]
        assert record["benchmark"] == "test_crawl_throughput"
        assert record["visits_per_second"] == 50_000.0
        assert record["baseline"] == 48_000.0

    def test_successive_runs_accumulate(self, gate, tmp_path):
        history = tmp_path / "history.jsonl"
        for rate in (50_000.0, 51_000.0, 49_000.0):
            gate.append_history(history, {"test_crawl_throughput": rate}, {})
        rates = [
            json.loads(line)["visits_per_second"]
            for line in history.read_text().splitlines()
        ]
        assert rates == [50_000.0, 51_000.0, 49_000.0]

    def test_creates_parent_directory(self, gate, tmp_path):
        history = tmp_path / "nested" / "history.jsonl"
        gate.append_history(history, {"b": 1.0}, {})
        assert history.exists()

    def test_records_commit_from_env(self, gate, tmp_path, monkeypatch):
        monkeypatch.setenv("GITHUB_SHA", "cafe1234")
        history = tmp_path / "history.jsonl"
        gate.append_history(history, {"b": 1.0}, {})
        assert json.loads(history.read_text())["commit"] == "cafe1234"


class TestGateCli:
    def test_gate_appends_history(self, gate, tmp_path, capsys):
        history = tmp_path / "history.jsonl"
        code = gate.main(
            [
                str(_results_file(tmp_path)),
                "--baseline", str(_baseline_file(tmp_path)),
                "--history", str(history),
            ]
        )
        assert code == 0
        assert "history appended" in capsys.readouterr().out
        assert len(history.read_text().splitlines()) == 1

    def test_no_history_flag_skips_append(self, gate, tmp_path):
        history = tmp_path / "history.jsonl"
        code = gate.main(
            [
                str(_results_file(tmp_path)),
                "--baseline", str(_baseline_file(tmp_path)),
                "--history", str(history),
                "--no-history",
            ]
        )
        assert code == 0
        assert not history.exists()

    def test_regression_still_fails_after_append(self, gate, tmp_path):
        history = tmp_path / "history.jsonl"
        code = gate.main(
            [
                str(_results_file(tmp_path, rate=10_000.0)),
                "--baseline", str(_baseline_file(tmp_path, rate=48_000.0)),
                "--history", str(history),
            ]
        )
        assert code == 1
        # The losing run is still recorded — trajectories show dips.
        assert len(history.read_text().splitlines()) == 1

    def test_update_appends_too(self, gate, tmp_path):
        history = tmp_path / "history.jsonl"
        baseline = tmp_path / "baseline.json"
        baseline.write_text("{}")
        code = gate.main(
            [
                str(_results_file(tmp_path)),
                "--baseline", str(baseline),
                "--history", str(history),
                "--update",
            ]
        )
        assert code == 0
        assert len(history.read_text().splitlines()) == 1


def test_seed_history_parses(gate):
    """The committed seed history must stay loadable by the portal."""
    from repro.report.bench import load_history, metric_of, rate_of

    seed = (
        Path(__file__).resolve().parent.parent / "benchmarks" / "history.jsonl"
    )
    records = load_history(seed)
    assert records
    assert all(rate_of(record) > 0 for record in records)
    metrics = {metric_of(record) for record in records}
    # Both planes' trajectories live in the committed history.
    assert "visits_per_second" in metrics
    assert "reid_users_per_second" in metrics


class TestMultiMetricGate:
    def test_gated_rates_reads_each_benchmark_metric(self, gate):
        results = {
            "benchmarks": [
                {
                    "name": "test_crawl_throughput",
                    "extra_info": {"visits_per_second": 50_000.0},
                },
                {
                    "name": "test_reid_throughput",
                    "extra_info": {"reid_users_per_second": 1_500.0},
                },
                {"name": "test_ungated", "extra_info": {"whatever": 1.0}},
            ]
        }
        assert gate.gated_rates(results) == {
            "test_crawl_throughput": 50_000.0,
            "test_reid_throughput": 1_500.0,
        }

    def test_history_records_name_their_metric(self, gate, tmp_path):
        history = tmp_path / "history.jsonl"
        gate.append_history(
            history,
            {"test_reid_throughput": 1_500.0, "test_crawl_throughput": 50_000.0},
            {},
        )
        records = [json.loads(line) for line in history.read_text().splitlines()]
        by_name = {record["benchmark"]: record for record in records}
        crawl = by_name["test_crawl_throughput"]
        reid = by_name["test_reid_throughput"]
        assert crawl["metric"] == "visits_per_second"
        assert crawl["visits_per_second"] == 50_000.0
        assert reid["metric"] == "reid_users_per_second"
        assert reid["reid_users_per_second"] == 1_500.0

    def test_reid_regression_fails_the_gate(self, gate, tmp_path, capsys):
        results = tmp_path / "results.json"
        results.write_text(
            json.dumps(
                {
                    "benchmarks": [
                        {
                            "name": "test_reid_throughput",
                            "extra_info": {"reid_users_per_second": 100.0},
                        }
                    ]
                }
            )
        )
        baseline = tmp_path / "baseline.json"
        baseline.write_text(json.dumps({"test_reid_throughput": 1_400.0}))
        code = gate.main(
            [str(results), "--baseline", str(baseline), "--no-history"]
        )
        assert code == 1
        assert "REGRESSION" in capsys.readouterr().out
