"""Unit tests for the Tranco-style ranking artefact."""

import pytest

from repro.web.tranco import TrancoList


class TestTrancoList:
    def test_iter_yields_ranks_from_one(self):
        ranking = TrancoList.of(["a.com", "b.com", "c.com"])
        assert list(ranking) == [(1, "a.com"), (2, "b.com"), (3, "c.com")]

    def test_rank_of(self):
        ranking = TrancoList.of(["a.com", "b.com"])
        assert ranking.rank_of("b.com") == 2
        with pytest.raises(ValueError):
            ranking.rank_of("missing.com")

    def test_top(self):
        ranking = TrancoList.of([f"s{i}.com" for i in range(10)])
        assert len(ranking.top(3)) == 3
        assert ranking.top(3).domains == ranking.domains[:3]

    def test_duplicates_rejected(self):
        with pytest.raises(ValueError):
            TrancoList.of(["a.com", "a.com"])

    def test_csv_round_trip(self, tmp_path):
        ranking = TrancoList.of(["a.com", "b.org", "c.co.uk"])
        path = tmp_path / "tranco.csv"
        ranking.to_csv(path)
        assert TrancoList.from_csv(path).domains == ranking.domains

    def test_csv_format(self, tmp_path):
        path = tmp_path / "tranco.csv"
        TrancoList.of(["a.com"]).to_csv(path)
        assert path.read_text() == "1,a.com\n"

    def test_csv_rank_continuity_enforced(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("1,a.com\n3,b.com\n")
        with pytest.raises(ValueError):
            TrancoList.from_csv(path)

    def test_csv_bad_rank_rejected(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("one,a.com\n")
        with pytest.raises(ValueError):
            TrancoList.from_csv(path)

    def test_csv_missing_domain_rejected(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("1,\n")
        with pytest.raises(ValueError):
            TrancoList.from_csv(path)

    def test_csv_skips_blank_lines(self, tmp_path):
        path = tmp_path / "ok.csv"
        path.write_text("1,a.com\n\n2,b.com\n")
        assert len(TrancoList.from_csv(path)) == 2
