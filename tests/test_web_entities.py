"""Unit tests for the entity-ownership database."""

import pytest

from repro.web.entities import EntityDatabase, WELL_KNOWN_ENTITIES


class TestWellKnownEntities:
    def test_paper_examples_present(self):
        db = EntityDatabase()
        # §4's example pair.
        assert db.same_entity("windows.com", "microsoft.com")
        # Figure 5 lists both Yandex domains.
        assert db.same_entity("yandex.com", "yandex.ru")

    def test_google_family(self):
        db = EntityDatabase()
        assert db.entity_of("googletagmanager.com") == "Google"
        assert db.same_entity("doubleclick.net", "google-analytics.com")

    def test_cross_entity_no_match(self):
        db = EntityDatabase()
        assert not db.same_entity("criteo.com", "taboola.com")


class TestEntityDatabase:
    def test_unknown_domains_never_match(self):
        db = EntityDatabase()
        assert not db.same_entity("unknown-a.com", "unknown-a.com")
        assert db.entity_of("unknown-a.com") is None

    def test_subdomains_resolve_to_owner(self):
        db = EntityDatabase()
        assert db.entity_of("ads.doubleclick.net") == "Google"

    def test_add_and_lookup(self):
        db = EntityDatabase(groups={})
        db.add("Acme", "acme.com")
        db.add("Acme", "acme-cdn.net")
        assert db.same_entity("www.acme.com", "static.acme-cdn.net")
        assert db.domains_of("Acme") == {"acme.com", "acme-cdn.net"}

    def test_readd_same_entity_is_noop(self):
        db = EntityDatabase(groups={})
        db.add("Acme", "acme.com")
        db.add("Acme", "acme.com")
        assert len(db) == 1

    def test_domain_cannot_change_owner(self):
        db = EntityDatabase(groups={})
        db.add("Acme", "acme.com")
        with pytest.raises(ValueError):
            db.add("Other", "acme.com")

    def test_entities_sorted(self):
        db = EntityDatabase(groups={"B": ["b.com"], "A": ["a.com"]})
        assert db.entities() == ["A", "B"]

    def test_len_counts_domains(self):
        expected = sum(len(domains) for domains in WELL_KNOWN_ENTITIES.values())
        assert len(EntityDatabase()) == expected
