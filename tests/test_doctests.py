"""Run every docstring example in the package as a test."""

import doctest
import importlib
import pkgutil

import pytest

import repro


def _iter_module_names():
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        yield info.name


@pytest.mark.parametrize("module_name", sorted(_iter_module_names()))
def test_module_doctests(module_name):
    module = importlib.import_module(module_name)
    results = doctest.testmod(module, verbose=False)
    assert results.failed == 0, f"{module_name}: {results.failed} doctest failures"
