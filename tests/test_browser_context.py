"""Unit tests for origins and browsing contexts — the §4 mechanism."""

from repro.browser.context import root_context_for
from repro.browser.origin import Origin
from repro.util.urls import https, parse_url


class TestOrigin:
    def test_site_is_registrable_domain(self):
        origin = Origin.of(parse_url("https://static.criteo.com/tag.js"))
        assert origin.site == "criteo.com"

    def test_schemeful_site(self):
        origin = Origin.of(https("www.foo.com"))
        assert origin.schemeful_site() == "https://foo.com"

    def test_same_origin_strict(self):
        a = Origin.of(https("www.foo.com"))
        b = Origin.of(https("api.foo.com"))
        assert not a.same_origin(b)
        assert a.same_origin(Origin.of(https("www.foo.com")))

    def test_same_site_ignores_subdomain(self):
        a = Origin.of(https("www.foo.com"))
        b = Origin.of(https("api.foo.com"))
        assert a.same_site(b)

    def test_same_site_requires_scheme(self):
        a = Origin("https", "www.foo.com", 443)
        b = Origin("http", "www.foo.com", 80)
        assert not a.same_site(b)

    def test_str_omits_default_port(self):
        assert str(Origin("https", "foo.com", 443)) == "https://foo.com"
        assert str(Origin("https", "foo.com", 8443)) == "https://foo.com:8443"


class TestBrowsingContext:
    def test_root_properties(self):
        root = root_context_for(https("www.site.com"))
        assert root.is_root
        assert root.top is root
        assert root.depth() == 0
        assert root.top_frame_site == "site.com"

    def test_iframe_gets_own_origin(self):
        root = root_context_for(https("www.site.com"))
        frame = root.open_iframe(https("ads.tracker.net", "/frame.html"))
        assert frame.origin.host == "ads.tracker.net"
        assert frame.parent is root
        assert frame in root.children
        assert not frame.is_root

    def test_nested_iframes_keep_top_frame_site(self):
        root = root_context_for(https("www.site.com"))
        frame = root.open_iframe(https("a.net"))
        inner = frame.open_iframe(https("b.org"))
        assert inner.top is root
        assert inner.top_frame_site == "site.com"
        assert inner.depth() == 2

    def test_script_executes_with_embedder_origin(self):
        # Figure 4's crux: a <script src=gtm.js> in the page HTML runs with
        # the PAGE's origin, not googletagmanager.com's.
        root = root_context_for(https("www.example.org"))
        assert root.script_execution_origin().host == "www.example.org"
        assert root.script_execution_origin().site == "example.org"

    def test_script_inside_iframe_uses_iframe_origin(self):
        root = root_context_for(https("www.example.org"))
        frame = root.open_iframe(https("frame.criteo.com", "/topics.html"))
        assert frame.script_execution_origin().site == "criteo.com"
