"""Tests for the ad-serving substrate (inventory, server, targeting study)."""

import pytest

from repro.adserver.experiment import TargetingStudy, render_targeting
from repro.adserver.inventory import Inventory
from repro.adserver.server import AdServer
from repro.browser.topics.types import Topic
from repro.taxonomy.tree import load_default_taxonomy


@pytest.fixture(scope="module")
def taxonomy():
    return load_default_taxonomy()


@pytest.fixture(scope="module")
def inventory(taxonomy):
    return Inventory.generate(taxonomy, seed=3)


def topic(tid):
    return Topic(topic_id=tid, taxonomy_version="2", model_version="1")


class TestInventory:
    def test_every_root_covered(self, taxonomy, inventory):
        for root in taxonomy.roots():
            assert inventory.matching(root.topic_id), root.path

    def test_matching_respects_hierarchy(self, taxonomy, inventory):
        # A campaign targeting a root matches requests for its leaves.
        root = taxonomy.by_path("/Sports")
        leaf = taxonomy.children(root.topic_id)[0]
        matches = inventory.matching(leaf.topic_id)
        assert matches
        target_ids = {c.target_topic for c in matches}
        ancestors = {n.topic_id for n in taxonomy.ancestors(leaf.topic_id)}
        ancestors.add(leaf.topic_id)
        assert target_ids <= ancestors

    def test_matching_best_paying_first(self, inventory, taxonomy):
        matches = inventory.matching(taxonomy.roots()[0].topic_id)
        cpms = [c.cpm for c in matches]
        assert cpms == sorted(cpms, reverse=True)

    def test_no_cross_category_matches(self, taxonomy, inventory):
        sports = taxonomy.by_path("/Sports")
        for campaign in inventory.matching(sports.topic_id):
            assert taxonomy.root_of(campaign.target_topic).path == "/Sports"

    def test_house_campaigns_exist_and_cheap(self, inventory):
        house = inventory.house_campaigns()
        assert house
        assert all(not c.targeted for c in house)
        assert max(c.cpm for c in house) < 2.0

    def test_generation_deterministic(self, taxonomy):
        a = Inventory.generate(taxonomy, seed=9)
        b = Inventory.generate(taxonomy, seed=9)
        assert a.house_campaigns() == b.house_campaigns()
        assert len(a) == len(b)


class TestAdServer:
    def test_topics_request_targets(self, inventory, taxonomy):
        server = AdServer(inventory)
        sports = taxonomy.by_path("/Sports").topic_id
        response = server.provide_ad_for_topics([topic(sports)])
        assert response.targeted
        assert taxonomy.root_of(response.campaign.target_topic).topic_id == sports
        assert response.signal == "topics"

    def test_empty_topics_serves_house(self, inventory):
        server = AdServer(inventory)
        response = server.provide_ad_for_topics([])
        assert not response.targeted
        assert response.campaign.advertiser == "house.example"

    def test_untargeted(self, inventory):
        server = AdServer(inventory)
        assert not server.provide_ad_untargeted().targeted

    def test_profile_request(self, inventory, taxonomy):
        server = AdServer(inventory)
        shopping = taxonomy.by_path("/Shopping").topic_id
        response = server.provide_ad_for_profile([shopping])
        assert response.targeted
        assert response.signal == "cookie-profile"

    def test_best_topic_wins_auction(self, inventory, taxonomy):
        server = AdServer(inventory)
        roots = [r.topic_id for r in taxonomy.roots()[:5]]
        response = server.provide_ad_for_topics([topic(t) for t in roots])
        best_available = max(
            inventory.matching(t)[0].cpm for t in roots if inventory.matching(t)
        )
        assert response.campaign.cpm == best_available

    def test_revenue_bookkeeping(self, inventory, taxonomy):
        server = AdServer(inventory)
        server.provide_ad_for_topics([topic(taxonomy.roots()[0].topic_id)])
        server.provide_ad_untargeted()
        revenue = server.revenue_by_signal()
        assert set(revenue) == {"topics", "none"}
        assert revenue["topics"] > revenue["none"]

    def test_house_required(self, taxonomy):
        bare = Inventory(taxonomy, [])
        with pytest.raises(RuntimeError):
            AdServer(bare).provide_ad_untargeted()


class TestTargetingStudy:
    @pytest.fixture(scope="class")
    def result(self):
        return TargetingStudy(population_size=40, epochs=4).run()

    def test_ordering_cookie_topics_none(self, result):
        # The comparison §3's A/B tests are running: cookies (full
        # profile) beat Topics, Topics beat nothing.
        assert result.cookie.relevance > result.topics.relevance
        assert result.topics.relevance > result.untargeted.relevance

    def test_cookie_profile_near_perfect(self, result):
        assert result.cookie.relevance > 0.9

    def test_topics_substantially_useful(self, result):
        assert result.topics.relevance > 0.35
        assert result.topics_substitution_ratio > 0.4

    def test_untargeted_worthless(self, result):
        assert result.untargeted.relevance == 0.0
        assert result.untargeted.mean_cpm < result.topics.mean_cpm

    def test_impression_counts(self, result):
        assert (
            result.cookie.impressions
            == result.topics.impressions
            == result.untargeted.impressions
            == 40
        )

    def test_deterministic(self, result):
        rerun = TargetingStudy(population_size=40, epochs=4).run()
        assert rerun.topics.relevance == result.topics.relevance

    def test_render(self, result):
        text = render_targeting(result)
        assert "cookie-profile" in text and "retains" in text
