"""Tests for the §2.4 dataset-statistics block."""

from repro.analysis.dataset_stats import (
    compute_stats,
    render_stats,
    third_party_frequency,
)
from repro.web.tlds import Region


class TestComputeStats:
    def test_counts_consistent_with_report(self, crawl):
        stats = compute_stats(crawl)
        assert stats.targets == crawl.report.targets
        assert stats.ok == crawl.report.ok == stats.first_parties
        assert stats.accepted == len(crawl.d_aa)
        assert stats.ok + stats.failed == stats.targets

    def test_failure_kinds_sum(self, crawl):
        stats = compute_stats(crawl)
        assert sum(stats.failure_kinds.values()) == stats.failed

    def test_rates(self, crawl):
        stats = compute_stats(crawl)
        assert 0.3 <= stats.accept_rate <= 0.4
        assert stats.accept_rate_given_banner > stats.accept_rate
        assert stats.banner_rate > stats.accept_rate

    def test_third_party_counts(self, crawl):
        stats = compute_stats(crawl)
        assert stats.unique_third_parties_ba > 0
        # Post-consent pages load strictly more ad tags.
        assert stats.unique_third_parties_aa > 0

    def test_languages_plausible(self, crawl):
        stats = compute_stats(crawl)
        assert stats.banner_languages.get("en", 0) > 0
        # Unsupported languages appear among *seen* banners too.
        assert "ru" in stats.banner_languages or "ja" in stats.banner_languages

    def test_regions_cover_all(self, crawl):
        stats = compute_stats(crawl)
        for region in Region:
            assert stats.region_counts_ba.get(region, 0) > 0
        # Acceptance skews regional composition: RU nearly vanishes in AA.
        ru_ba_share = stats.region_counts_ba[Region.RU] / stats.ok
        ru_aa_share = stats.region_counts_aa.get(Region.RU, 0) / stats.accepted
        assert ru_aa_share < ru_ba_share

    def test_render(self, crawl):
        text = render_stats(compute_stats(crawl))
        assert "Section 2.4" in text
        assert "banner languages" in text
        assert "third parties D_BA" in text


class TestThirdPartyFrequency:
    def test_top_list_sorted(self, crawl):
        top = third_party_frequency(crawl.d_aa, top=10)
        counts = [count for _, count in top]
        assert counts == sorted(counts, reverse=True)
        assert len(top) == 10

    def test_google_infrastructure_leads_aa(self, crawl):
        # GTM / GA / doubleclick dominate presence, as in Figure 2.
        top = third_party_frequency(crawl.d_aa, top=5)
        assert top[0][0] in (
            "google-analytics.com",
            "googletagmanager.com",
            "googleapis.com",
        )
        assert "google-analytics.com" in {name for name, _ in top}
