"""Unit tests for the instrumented site-data manager (gating + logging)."""


from repro.attestation.allowlist import (
    AllowList,
    AllowListDatabase,
    GatingDecision,
)
from repro.browser.topics.manager import BrowsingTopicsSiteDataManager
from repro.browser.topics.selection import EpochTopicsSelector
from repro.browser.topics.types import ApiCallType
from repro.taxonomy.classifier import SiteClassifier
from repro.util.timeline import EPOCH_DURATION


def make_manager(allowed=("criteo.com",), corrupt=False):
    db = AllowListDatabase.from_allowlist(AllowList.of(allowed))
    if corrupt:
        db.corrupt()
    selector = EpochTopicsSelector(SiteClassifier(), user_seed=1)
    return BrowsingTopicsSiteDataManager(selector, db)


class TestGating:
    def test_enrolled_caller_allowed(self):
        manager = make_manager()
        manager.handle_topics_call("bid.criteo.com", "news.com", ApiCallType.FETCH, 0)
        call = manager.call_log[0]
        assert call.decision is GatingDecision.ALLOWED_ENROLLED
        assert call.allowed

    def test_unenrolled_caller_blocked(self):
        manager = make_manager()
        topics = manager.handle_topics_call(
            "www.random-site.com", "random-site.com", ApiCallType.JAVASCRIPT, 0
        )
        assert topics == []
        assert manager.call_log[0].decision is GatingDecision.BLOCKED_NOT_ENROLLED

    def test_blocked_caller_does_not_observe(self):
        manager = make_manager()
        manager.handle_topics_call(
            "www.random-site.com", "random-site.com", ApiCallType.JAVASCRIPT, 0
        )
        assert manager.history.eligible_sites(0) == []

    def test_corrupt_database_allows_everyone(self):
        # The paper's measurement trick: with the corrupted component, all
        # callers go through and become observable.
        manager = make_manager(corrupt=True)
        manager.handle_topics_call(
            "www.random-site.com", "random-site.com", ApiCallType.JAVASCRIPT, 0
        )
        call = manager.call_log[0]
        assert call.decision is GatingDecision.ALLOWED_DATABASE_CORRUPT
        assert call.allowed


class TestLogging:
    def test_caller_normalised_to_registrable(self):
        manager = make_manager()
        manager.handle_topics_call("bid.criteo.com", "news.com", ApiCallType.FETCH, 5)
        call = manager.call_log[0]
        assert call.caller == "criteo.com"
        assert call.caller_host == "bid.criteo.com"
        assert call.site == "news.com"
        assert call.at == 5

    def test_repeated_calls_logged_individually(self):
        # §2.2: "record possible multiple calls from the same CP on the
        # same webpage".
        manager = make_manager()
        for _ in range(3):
            manager.handle_topics_call(
                "bid.criteo.com", "news.com", ApiCallType.JAVASCRIPT, 0
            )
        assert manager.call_count == 3

    def test_call_type_recorded(self):
        manager = make_manager()
        for call_type in ApiCallType:
            manager.handle_topics_call("bid.criteo.com", "news.com", call_type, 0)
        assert [c.call_type for c in manager.call_log] == list(ApiCallType)

    def test_drain_calls_since(self):
        manager = make_manager()
        manager.handle_topics_call("bid.criteo.com", "a.com", ApiCallType.FETCH, 0)
        mark = manager.call_count
        manager.handle_topics_call("bid.criteo.com", "b.com", ApiCallType.FETCH, 0)
        drained = manager.drain_calls_since(mark)
        assert len(drained) == 1 and drained[0].site == "b.com"

    def test_reset_log_keeps_history(self):
        manager = make_manager()
        manager.handle_topics_call("bid.criteo.com", "a.com", ApiCallType.FETCH, 0)
        manager.reset_log()
        assert manager.call_count == 0
        assert manager.history.eligible_sites(0) == ["a.com"]


class TestObservation:
    def test_allowed_call_observes_site(self):
        manager = make_manager()
        manager.handle_topics_call("bid.criteo.com", "news.com", ApiCallType.FETCH, 0)
        assert manager.history.observers_of(0, "news.com") == {"criteo.com"}

    def test_skip_observation(self):
        manager = make_manager()
        manager.handle_topics_call(
            "bid.criteo.com", "news.com", ApiCallType.JAVASCRIPT, 0, observe=False
        )
        assert manager.history.eligible_sites(0) == []

    def test_topics_returned_after_history_builds(self):
        manager = make_manager()
        # Observe across three past epochs, then ask in epoch 3.
        for epoch in range(3):
            for i in range(3):
                manager.handle_topics_call(
                    "bid.criteo.com",
                    "news.com",
                    ApiCallType.JAVASCRIPT,
                    epoch * EPOCH_DURATION + i,
                )
        topics = manager.handle_topics_call(
            "bid.criteo.com", "other.com", ApiCallType.JAVASCRIPT, 3 * EPOCH_DURATION
        )
        assert topics
        assert manager.call_log[-1].topics_returned == len(topics)

    def test_fresh_profile_returns_no_real_topics(self):
        manager = make_manager()
        topics = manager.handle_topics_call(
            "bid.criteo.com", "news.com", ApiCallType.JAVASCRIPT, 0
        )
        assert all(t.is_noise for t in topics)


class TestRecordPageVisit:
    def test_countable_but_not_eligible(self):
        manager = make_manager()
        manager.record_page_visit("news.com", 0)
        assert manager.history.visit_count(0, "news.com") == 1
        assert manager.history.eligible_sites(0) == []
