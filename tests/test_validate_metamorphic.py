"""The metamorphic harness: all relations hold on a healthy pipeline,
and the comparators actually detect seeded divergence.
"""

import json

import pytest

from repro.crawler.campaign import CrawlCampaign
from repro.validate import (
    MetamorphicHarness,
    compare_archives,
    render_metamorphic,
)
from repro.validate.metamorphic import compare_semantics
from repro.web.config import WorldConfig
from repro.web.generator import WebGenerator

META_SITES = 160


@pytest.fixture(scope="module")
def harness(tmp_path_factory):
    return MetamorphicHarness(
        tmp_path_factory.mktemp("metamorphic"),
        sites=META_SITES,
        seed=11,
        shard_counts=(1, 2, 3),
        backends=("serial", "thread"),
    )


@pytest.fixture(scope="module")
def report(harness):
    return harness.run()


class TestRelationsHold:
    def test_every_relation_passes(self, report):
        assert report.ok, render_metamorphic(report)

    def test_all_relations_ran(self, harness, report):
        assert [r.relation for r in report.results] == harness.relation_names()

    def test_report_roundtrips_to_json(self, report, tmp_path):
        out = tmp_path / "metamorphic.json"
        report.save(out)
        payload = json.loads(out.read_text())
        assert payload["ok"] is True
        assert payload["sites"] == META_SITES
        assert {r["relation"] for r in payload["relations"]} == {
            r.relation for r in report.results
        }


class TestDriver:
    def test_relation_subset_selection(self, harness):
        subset = harness.run(relations=["seed-stability"])
        assert [r.relation for r in subset.results] == ["seed-stability"]

    def test_unknown_relation_rejected(self, harness):
        with pytest.raises(ValueError, match="unknown metamorphic relation"):
            harness.run(relations=["not-a-relation"])


class TestComparatorsDetectDivergence:
    """The harness is only as good as its comparators — seed a divergence
    and prove each one catches it."""

    def test_compare_archives_flags_byte_flip(self, harness, tmp_path):
        baseline = harness.baseline_archive()
        mutated = tmp_path / "mutated"
        mutated.mkdir()
        for path in baseline.iterdir():
            if path.is_file():
                (mutated / path.name).write_bytes(path.read_bytes())
        report_path = mutated / "report.json"
        report_path.write_text(report_path.read_text().replace('"ok"', '"kk"', 1))
        differences = compare_archives(baseline, mutated)
        assert any("report.json" in diff for diff in differences)

    def test_compare_archives_flags_missing_file(self, harness, tmp_path):
        baseline = harness.baseline_archive()
        empty = tmp_path / "empty"
        empty.mkdir()
        differences = compare_archives(baseline, empty)
        assert len(differences) == 5  # every archive file missing

    def test_compare_semantics_flags_different_worlds(self, harness):
        left = harness._run(
            "sequential", lambda: CrawlCampaign(harness._world()).run()
        )
        other_world = WebGenerator(
            WorldConfig.small(META_SITES, seed=99)
        ).generate()
        right = CrawlCampaign(other_world).run()
        differences = compare_semantics(left, right)
        assert differences  # different seeds → visibly different campaigns

    def test_compare_semantics_empty_on_identity(self, harness):
        result = harness._run(
            "sequential", lambda: CrawlCampaign(harness._world()).run()
        )
        assert compare_semantics(result, result) == []


class TestRenderer:
    def test_failure_rendering_names_relation_and_detail(self, report):
        from repro.validate import RelationResult, MetamorphicReport

        failing = MetamorphicReport(
            sites=report.sites,
            seed=report.seed,
            results=(
                RelationResult(
                    relation="backend-equivalence",
                    description="x",
                    passed=False,
                    details=("d_ba.jsonl: differs",),
                ),
            ),
        )
        rendered = render_metamorphic(failing)
        assert "FAIL backend-equivalence" in rendered
        assert "d_ba.jsonl: differs" in rendered
        assert "RESULT: FAIL" in rendered
        assert not failing.ok
        assert [r.relation for r in failing.failures] == ["backend-equivalence"]
