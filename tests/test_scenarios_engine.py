"""Sweep engine end-to-end: determinism, crash injection, resume."""

from pathlib import Path

import pytest

from repro.crawler.executor import CrashSchedule
from repro.scenarios.engine import (
    ARCHIVE_FILES,
    CELL_MARKER_FILE,
    CellFailedError,
    archive_digest,
    load_cell_marker,
    run_sweep,
)
from repro.scenarios.matrix import expand
from repro.scenarios.metrics import METRIC_NAMES
from repro.scenarios.spec import ScenarioSpec

#: Small enough to keep the suite fast, large enough that both vantages
#: see banners and the corrupted allow-list admits anomalous callers.
_SITES = 300


def tiny_spec(seed: int = 5, assertions: tuple = ()) -> ScenarioSpec:
    return ScenarioSpec.from_dict(
        {
            "name": "tiny",
            "world": {"sites": _SITES, "seed": seed},
            "axes": [
                {
                    "name": "vantage",
                    "values": [
                        {"name": "eu", "vantage": "eu"},
                        {"name": "us", "vantage": "us"},
                    ],
                },
                {
                    "name": "allowlist",
                    "values": [
                        {"name": "corrupted", "allowlist": "corrupted"},
                        {"name": "healthy", "allowlist": "healthy"},
                    ],
                },
            ],
            "baseline": {"vantage": "eu", "allowlist": "corrupted"},
            "assertions": list(assertions),
        }
    )


def tree_bytes(root: Path) -> dict[str, bytes]:
    return {
        str(path.relative_to(root)): path.read_bytes()
        for path in sorted(root.rglob("*"))
        if path.is_file()
    }


class TestRunSweep:
    def test_end_to_end_serial(self, tmp_path):
        spec = tiny_spec()
        outcome = run_sweep(spec, tmp_path / "sweep", backend="serial")

        assert [run.cell_id for run in outcome.runs] == [
            cell.cell_id for cell in outcome.cells
        ]
        assert len(outcome.runs) == 4
        assert outcome.baseline_id == "allowlist=corrupted,vantage=eu"
        assert outcome.report.ok  # no assertions declared -> vacuously ok
        assert outcome.manifest_path.exists()
        assert (outcome.report_dir / "index.html").exists()
        for cell in outcome.cells:
            cell_dir = tmp_path / "sweep" / "cells" / cell.cell_id
            for name in ARCHIVE_FILES:
                assert (cell_dir / name).exists()
            marker = load_cell_marker(cell_dir)
            assert marker is not None
            assert marker.fingerprint == cell.fingerprint
            assert marker.archive_digest == archive_digest(cell_dir)
            assert [name for name, _ in marker.metrics] == list(METRIC_NAMES)

    def test_thread_backend_matches_serial_bytes(self, tmp_path):
        spec = tiny_spec()
        run_sweep(spec, tmp_path / "serial", backend="serial")
        run_sweep(spec, tmp_path / "thread", backend="thread", max_workers=4)
        assert tree_bytes(tmp_path / "serial") == tree_bytes(
            tmp_path / "thread"
        )

    def test_assertions_feed_the_report(self, tmp_path):
        spec = tiny_spec(
            assertions=(
                {
                    "kind": "bound",
                    "metric": "anomalous_calls",
                    "where": {"allowlist": "healthy"},
                    "equals": 0,
                },
                {
                    "kind": "monotonic",
                    "metric": "aa_not_allowed",
                    "axis": "allowlist",
                    "order": ["corrupted", "healthy"],
                    "direction": "non-increasing",
                },
            )
        )
        outcome = run_sweep(spec, tmp_path / "sweep", backend="serial")
        assert outcome.report.ok
        # One bound verdict + one monotonic verdict per vantage value.
        assert len(outcome.report.verdicts) == 3

    def test_failing_assertion_flips_ok(self, tmp_path):
        spec = tiny_spec(
            assertions=(
                {
                    "kind": "bound",
                    "metric": "targets",
                    "where": {},
                    "equals": -1,
                },
            )
        )
        outcome = run_sweep(spec, tmp_path / "sweep", backend="serial")
        assert not outcome.report.ok
        assert all(not verdict.passed for verdict in outcome.report.verdicts)


class TestCrashAndResume:
    def test_injected_crash_surfaces_as_cell_failure(self, tmp_path):
        spec = tiny_spec()
        cells = expand(spec)
        # Kill the last cell (serial order == sorted cell ids) so every
        # earlier cell completes and keeps its marker.
        injector = CrashSchedule(
            shard_index=len(cells) - 1, points=((1, 5),)
        )
        with pytest.raises(CellFailedError) as failure:
            run_sweep(
                spec,
                tmp_path / "sweep",
                backend="serial",
                fault_injector=injector,
            )
        assert failure.value.cell_id == cells[-1].cell_id
        assert "resume" in str(failure.value)

        cells_root = tmp_path / "sweep" / "cells"
        for cell in cells[:-1]:
            assert (cells_root / cell.cell_id / CELL_MARKER_FILE).exists()
        assert not (
            cells_root / cells[-1].cell_id / CELL_MARKER_FILE
        ).exists()

    def test_resume_after_crash_is_byte_identical(self, tmp_path):
        spec = tiny_spec()
        cells = expand(spec)
        injector = CrashSchedule(shard_index=len(cells) - 1, points=((1, 5),))
        with pytest.raises(CellFailedError):
            run_sweep(
                spec,
                tmp_path / "crashed",
                backend="serial",
                fault_injector=injector,
            )

        resumed = run_sweep(
            spec, tmp_path / "crashed", backend="serial", resume=True
        )
        assert resumed.resumed_cells == [
            cell.cell_id for cell in cells[:-1]
        ]
        assert [run.resumed for run in resumed.runs] == [
            True,
            True,
            True,
            False,
        ]

        clean = run_sweep(spec, tmp_path / "clean", backend="serial")
        assert tree_bytes(tmp_path / "crashed") == tree_bytes(
            tmp_path / "clean"
        )
        assert resumed.report.to_json() == clean.report.to_json()

    def test_resume_reruns_stale_fingerprints(self, tmp_path):
        run_sweep(tiny_spec(seed=5), tmp_path / "sweep", backend="serial")
        # Same cell ids, different world seed: every fingerprint changes,
        # so resume must trust nothing and re-run the full matrix.
        outcome = run_sweep(
            tiny_spec(seed=6), tmp_path / "sweep", backend="serial", resume=True
        )
        assert outcome.resumed_cells == []
        assert all(not run.resumed for run in outcome.runs)

    def test_resume_rejects_tampered_archives(self, tmp_path):
        spec = tiny_spec()
        first = run_sweep(spec, tmp_path / "sweep", backend="serial")
        victim = (
            tmp_path / "sweep" / "cells" / first.cells[0].cell_id / "report.json"
        )
        victim.write_text(victim.read_text() + "\n")
        outcome = run_sweep(
            spec, tmp_path / "sweep", backend="serial", resume=True
        )
        assert first.cells[0].cell_id not in outcome.resumed_cells
        assert len(outcome.resumed_cells) == 3
