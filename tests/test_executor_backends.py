"""Execution backends: resolution, cross-backend determinism, clamping.

The backend must be a pure scheduling choice — serial, thread and
process campaigns archive byte-identically, including a process-backend
campaign that crashed and was resumed from checkpoints.  These tests pin
that contract at the artefact level (``save_crawl`` bytes), plus the
resolution order, the shard-count clamp, and the process-pool pickling
seams.
"""

import pickle

import pytest

from repro.crawler.archive import save_crawl
from repro.crawler.checkpoint import RetryPolicy
from repro.crawler.executor import (
    BACKEND_ENV_VAR,
    CrashSchedule,
    ProcessBackend,
    SerialBackend,
    ShardFailedError,
    ThreadBackend,
    WorldReconstructionError,
    WorldSpec,
    _world_for,
    create_backend,
    is_picklable,
    resolve_backend_name,
    world_fingerprint,
)
from repro.crawler.parallel import ShardedCrawl, effective_shard_count
from repro.crawler.resumable import ResumableCrawl
from repro.obs import EventKind, Tracer
from repro.web.config import WorldConfig
from repro.web.generator import WebGenerator

#: Small world for process-backend tests: workers rebuild it from config,
#: so the generator cost is paid per worker — keep it cheap.
TINY_SITES = 240


@pytest.fixture(scope="module")
def tiny_world():
    return WebGenerator(WorldConfig.small(TINY_SITES, seed=11)).generate()


_ARCHIVE_FILES = (
    "report.json",
    "d_ba.jsonl",
    "d_aa.jsonl",
    "allowed_domains.txt",
    "attestation_survey.jsonl",
)


class TestBackendResolution:
    def test_default_is_thread(self, monkeypatch):
        monkeypatch.delenv(BACKEND_ENV_VAR, raising=False)
        assert resolve_backend_name(None) == "thread"

    def test_environment_selects(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV_VAR, "process")
        assert resolve_backend_name(None) == "process"

    def test_explicit_beats_environment(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV_VAR, "process")
        assert resolve_backend_name("serial") == "serial"

    def test_name_normalised(self):
        assert resolve_backend_name("  Process ") == "process"

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError, match="unknown crawl backend"):
            resolve_backend_name("fork")

    def test_create_backend_materialises_each(self):
        assert isinstance(create_backend("serial", 4), SerialBackend)
        assert isinstance(create_backend("thread", 4), ThreadBackend)
        assert isinstance(create_backend("process", 4), ProcessBackend)

    def test_create_backend_passes_instances_through(self):
        backend = SerialBackend()
        assert create_backend(backend, 4) is backend

    def test_worker_count_validated(self):
        with pytest.raises(ValueError):
            ThreadBackend(0)
        with pytest.raises(ValueError):
            ProcessBackend(-1)


class TestCrossBackendDeterminism:
    """Identical archive bytes across every backend — the relation is
    owned by the metamorphic harness; one legacy pin stays as a canary."""

    @pytest.fixture(scope="class")
    def harness(self, tmp_path_factory):
        from repro.validate import MetamorphicHarness

        return MetamorphicHarness(
            tmp_path_factory.mktemp("backend-harness"),
            sites=TINY_SITES,
            seed=11,
            shard_counts=(3,),
            backends=("serial", "thread", "process"),
        )

    def test_backend_equivalence_relation(self, harness):
        result = harness.check_backend_equivalence()
        assert result.passed, "\n".join(result.details)

    def test_canary_byte_pin(self, harness):
        """If this fires while the relation above stays green, the
        harness comparator has gone blind."""
        harness.check_backend_equivalence()  # archives cached by the run
        reference = (harness.workdir / "shards-3" / "d_ba.jsonl").read_bytes()
        for backend in ("thread", "process"):
            candidate = harness.workdir / f"backend-{backend}" / "d_ba.jsonl"
            assert candidate.read_bytes() == reference

    def test_environment_backend_matches(self, tiny_world, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV_VAR, "serial")
        result = ShardedCrawl(tiny_world, shard_count=3).run()
        via_env = {r.domain for r in result.d_ba}
        explicit = ShardedCrawl(tiny_world, shard_count=3, backend="serial").run()
        assert via_env == {r.domain for r in explicit.d_ba}


class TestProcessCrashResume:
    """A process-backend campaign that died mid-shard resumes byte-identically."""

    def test_resumed_process_run_matches_clean_serial_run(
        self, tiny_world, tmp_path
    ):
        clean = ResumableCrawl(
            tiny_world,
            tmp_path / "clean",
            shard_count=3,
            checkpoint_every=25,
            backend="serial",
        ).run()

        # Shard 1 dies inside its worker process on every attempt of the
        # first campaign — the retry budget runs out and the campaign
        # aborts, leaving durable checkpoints behind.
        schedule = CrashSchedule(
            shard_index=1, points=((1, 30), (2, 55), (3, 60))
        )
        crash_dir = tmp_path / "crashed"
        with pytest.raises(ShardFailedError):
            ResumableCrawl(
                tiny_world,
                crash_dir,
                shard_count=3,
                checkpoint_every=25,
                backend="process",
                max_workers=2,
                retry_policy=RetryPolicy(max_retries=2),
                fault_injector=schedule,
            ).run()

        # Second invocation: --resume, still on the process backend, no
        # faults.  Every shard picks up from its newest checkpoint.
        resumed = ResumableCrawl(
            tiny_world,
            crash_dir,
            shard_count=3,
            checkpoint_every=25,
            backend="process",
            max_workers=2,
            resume=True,
        ).run()
        assert 1 in resumed.resumed_shards

        clean_archive = save_crawl(clean.result, tmp_path / "a-clean")
        resumed_archive = save_crawl(resumed.result, tmp_path / "a-resumed")
        for filename in _ARCHIVE_FILES:
            assert (resumed_archive / filename).read_bytes() == (
                clean_archive / filename
            ).read_bytes(), f"{filename} diverged after crash+resume"

    def test_picklable_injector_keeps_process_backend(self, tiny_world, tmp_path):
        crawl = ResumableCrawl(
            tiny_world,
            tmp_path,
            shard_count=2,
            backend="process",
            fault_injector=CrashSchedule(shard_index=0, points=()),
        )
        assert crawl._resolve_backend(2).name == "process"

    def test_closure_injector_downgrades_to_thread(self, tiny_world, tmp_path):
        captured = []

        def injector(shard, attempt):  # closures cannot cross the pool
            captured.append((shard, attempt))
            return None

        crawl = ResumableCrawl(
            tiny_world,
            tmp_path,
            shard_count=2,
            backend="process",
            fault_injector=injector,
        )
        assert crawl._resolve_backend(2).name == "thread"


class TestShardCountClamp:
    def test_clamped_and_traced(self):
        tracer = Tracer()
        assert effective_shard_count(16, 6, tracer) == 6
        (event,) = tracer.events(EventKind.SHARD_EMPTY)
        assert event.fields == {"requested": 16, "effective": 6, "targets": 6}

    def test_no_event_when_within_range(self):
        tracer = Tracer()
        assert effective_shard_count(3, 10, tracer) == 3
        assert tracer.events(EventKind.SHARD_EMPTY) == []

    def test_zero_targets_still_plans_one_shard(self):
        assert effective_shard_count(4, 0) == 1

    def test_invalid_count_rejected(self):
        with pytest.raises(ValueError):
            effective_shard_count(0, 10)

    def test_error_names_the_offending_value(self):
        with pytest.raises(ValueError, match="shard_count must be positive, got -4"):
            effective_shard_count(-4, 10)

    def test_sharded_crawl_rejects_nonpositive_count_at_construction(
        self, tiny_world
    ):
        """Regression: a zero/negative count must fail fast in the
        constructor, not surface later from run()."""
        with pytest.raises(ValueError, match="shard_count must be positive, got 0"):
            ShardedCrawl(tiny_world, shard_count=0)
        with pytest.raises(ValueError, match="got -2"):
            ShardedCrawl(tiny_world, shard_count=-2)

    def test_resumable_crawl_rejects_nonpositive_count_at_construction(
        self, tiny_world, tmp_path
    ):
        with pytest.raises(ValueError, match="shard_count must be positive, got -1"):
            ResumableCrawl(tiny_world, tmp_path, shard_count=-1)

    def test_resumable_campaign_clamps(self, tiny_world, tmp_path):
        tracer = Tracer()
        outcome = ResumableCrawl(
            tiny_world,
            tmp_path,
            shard_count=16,
            limit=6,
            backend="serial",
            tracer=tracer,
        ).run()
        assert outcome.result.report.targets == 6
        (event,) = tracer.events(EventKind.SHARD_EMPTY)
        assert event.fields["requested"] == 16
        assert event.fields["effective"] == 6


class TestPicklingSeams:
    def test_is_picklable(self):
        assert is_picklable(CrashSchedule(shard_index=0, points=((1, 5),)))
        assert not is_picklable(lambda shard, attempt: None)

    def test_shard_failed_error_roundtrips(self):
        error = ShardFailedError(3, 2, RuntimeError("boom"))
        clone = pickle.loads(pickle.dumps(error))
        assert isinstance(clone, ShardFailedError)
        assert clone.shard_index == 3
        assert clone.attempts == 2
        assert "boom" in str(clone)

    def test_world_fingerprint_stable(self, tiny_world):
        spec = WorldSpec.of(tiny_world)
        assert spec.fingerprint == world_fingerprint(tiny_world)
        rebuilt = WebGenerator(tiny_world.config).generate()
        assert world_fingerprint(rebuilt) == spec.fingerprint

    def test_fingerprint_mismatch_refused(self, tiny_world):
        bogus = WorldSpec(config=tiny_world.config, fingerprint="0" * 16)
        with pytest.raises(WorldReconstructionError):
            _world_for(bogus)
