"""Unit tests for the allow-list: format, gating, and the Chromium bug."""

import pytest

from repro.attestation.allowlist import (
    AllowList,
    AllowListCorruptError,
    AllowListDatabase,
    GatingDecision,
    parse_allowlist,
)


@pytest.fixture
def allowlist() -> AllowList:
    return AllowList.of(["criteo.com", "doubleclick.net", "teads.tv"])


class TestAllowList:
    def test_normalises_to_registrable(self):
        al = AllowList.of(["static.ads.criteo.com"])
        assert "criteo.com" in al.domains

    def test_contains_matches_subdomains(self, allowlist):
        assert "frame.criteo.com" in allowlist
        assert "criteo.com" in allowlist
        assert "evil.com" not in allowlist

    def test_len(self, allowlist):
        assert len(allowlist) == 3

    def test_serialize_parse_round_trip(self, allowlist):
        parsed = parse_allowlist(allowlist.serialize())
        assert parsed.domains == allowlist.domains

    def test_serialized_entries_sorted(self, allowlist):
        lines = allowlist.serialize().splitlines()[1:]
        assert lines == sorted(lines)


class TestParseValidation:
    def test_empty_payload(self):
        with pytest.raises(AllowListCorruptError):
            parse_allowlist("")

    def test_bad_magic(self, allowlist):
        payload = allowlist.serialize().replace("PSAT", "XXXX")
        with pytest.raises(AllowListCorruptError):
            parse_allowlist(payload)

    def test_bad_version(self, allowlist):
        payload = allowlist.serialize().replace(" v1 ", " v9 ")
        with pytest.raises(AllowListCorruptError):
            parse_allowlist(payload)

    def test_count_mismatch(self, allowlist):
        payload = allowlist.serialize() + "extra.com\n"
        with pytest.raises(AllowListCorruptError):
            parse_allowlist(payload)

    def test_checksum_mismatch(self, allowlist):
        payload = allowlist.serialize().replace("criteo.com", "crixeo.com")
        with pytest.raises(AllowListCorruptError):
            parse_allowlist(payload)


class TestGating:
    def test_healthy_allows_enrolled(self, allowlist):
        db = AllowListDatabase.from_allowlist(allowlist)
        decision = db.check_caller("bid.criteo.com")
        assert decision is GatingDecision.ALLOWED_ENROLLED
        assert decision.allowed

    def test_healthy_blocks_unenrolled(self, allowlist):
        db = AllowListDatabase.from_allowlist(allowlist)
        decision = db.check_caller("www.some-website.com")
        assert decision is GatingDecision.BLOCKED_NOT_ENROLLED
        assert not decision.allowed

    def test_corrupt_database_default_allows(self, allowlist):
        # The bug the paper found (§2.3): corrupted database ⇒ any caller
        # may use the Topics API.
        db = AllowListDatabase.from_allowlist(allowlist)
        db.corrupt()
        assert db.is_corrupt
        decision = db.check_caller("www.some-website.com")
        assert decision is GatingDecision.ALLOWED_DATABASE_CORRUPT
        assert decision.allowed

    def test_missing_database_default_allows(self, allowlist):
        db = AllowListDatabase.from_allowlist(allowlist)
        db.remove()
        assert db.is_corrupt
        assert db.check_caller("anything.org").allowed

    def test_fresh_database_is_corrupt_until_updated(self):
        db = AllowListDatabase()
        assert db.is_corrupt
        assert db.check_caller("x.com").allowed

    def test_update_heals_corruption(self, allowlist):
        db = AllowListDatabase.from_allowlist(allowlist)
        db.corrupt()
        db.update(allowlist.serialize())
        assert not db.is_corrupt
        assert not db.check_caller("evil.com").allowed

    def test_corrupt_payload_update_marks_corrupt(self, allowlist):
        db = AllowListDatabase.from_allowlist(allowlist)
        db.update("garbage payload")
        assert db.is_corrupt
        assert db.allowlist is None

    def test_parsed_allowlist_exposed(self, allowlist):
        db = AllowListDatabase.from_allowlist(allowlist)
        assert db.allowlist is not None
        assert db.allowlist.domains == allowlist.domains
