"""Sparse linkage: exact equivalence with the dense reference ranker.

The sparse path's whole value proposition is that it changes the cost,
not the answer — so the pin here is byte-identical ``true_match_ranks``
(including the pessimistic tie handling) on adversarial random views,
for both built-in matchers, every backend, and any shard count.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.obs import MetricsRegistry, SpanRecorder
from repro.obs.spans import SPAN_REID_LINKAGE
from repro.privacy.attack import (
    LINKAGE_STRATEGIES,
    SPARSE_MIN_POPULATION,
    SequenceMatcher,
    TopicOverlapMatcher,
    link_profiles,
)

#: Tiny topic alphabet + short epochs → dense tie structure, the regime
#: where a subtly wrong comparison would surface immediately.
view = st.lists(
    st.lists(st.integers(1, 6), max_size=3).map(tuple), min_size=1, max_size=3
)
paired_views = st.integers(min_value=1, max_value=12).flatmap(
    lambda n: st.tuples(
        st.lists(view, min_size=n, max_size=n),
        st.lists(view, min_size=n, max_size=n),
    )
)


class TestSparseDenseEquivalence:
    @given(paired_views)
    @settings(max_examples=120, deadline=None)
    def test_sequence_matcher_ranks_identical(self, views):
        views_a, views_b = views
        dense = link_profiles(views_a, views_b, SequenceMatcher(), strategy="dense")
        sparse = link_profiles(
            views_a, views_b, SequenceMatcher(), strategy="sparse", backend="serial"
        )
        assert dense.true_match_ranks == sparse.true_match_ranks

    @given(paired_views)
    @settings(max_examples=120, deadline=None)
    def test_overlap_matcher_ranks_identical(self, views):
        views_a, views_b = views
        dense = link_profiles(
            views_a, views_b, TopicOverlapMatcher(), strategy="dense"
        )
        sparse = link_profiles(
            views_a,
            views_b,
            TopicOverlapMatcher(),
            strategy="sparse",
            backend="serial",
        )
        assert dense.true_match_ranks == sparse.true_match_ranks

    @given(paired_views, st.integers(min_value=1, max_value=5))
    @settings(max_examples=40, deadline=None)
    def test_shard_count_invariant(self, views, shard_count):
        views_a, views_b = views
        whole = link_profiles(
            views_a, views_b, SequenceMatcher(), strategy="sparse", backend="serial"
        )
        sharded = link_profiles(
            views_a,
            views_b,
            SequenceMatcher(),
            strategy="sparse",
            backend="serial",
            shard_count=shard_count,
        )
        assert whole.true_match_ranks == sharded.true_match_ranks

    def test_empty_views_rank_dead_last_on_both_paths(self):
        views = [[()] for _ in range(9)]
        for matcher in (SequenceMatcher(), TopicOverlapMatcher()):
            dense = link_profiles(views, views, matcher, strategy="dense")
            sparse = link_profiles(
                views, views, matcher, strategy="sparse", backend="serial"
            )
            assert dense.true_match_ranks == sparse.true_match_ranks == (9,) * 9

    @pytest.mark.parametrize("backend", ["serial", "thread", "process"])
    def test_backends_identical(self, backend):
        views_a = [[(u % 5, u % 3), (u % 7,)] for u in range(40)]
        views_b = [[(u % 5,), (u % 7, u % 2)] for u in range(40)]
        dense = link_profiles(views_a, views_b, SequenceMatcher(), strategy="dense")
        sparse = link_profiles(
            views_a,
            views_b,
            SequenceMatcher(),
            strategy="sparse",
            backend=backend,
            max_workers=2,
            shard_count=3,
        )
        assert dense.true_match_ranks == sparse.true_match_ranks


class TestStrategySelection:
    def test_auto_stays_dense_below_threshold(self):
        views = [[(1,)] for _ in range(SPARSE_MIN_POPULATION - 1)]
        metrics = MetricsRegistry()
        result = link_profiles(views, views, SequenceMatcher(), metrics=metrics)
        n = len(views)
        assert result.population_size == n
        # Dense scores every pair, including each user's true pair.
        snapshot = metrics.snapshot()
        assert snapshot.counter_total("reid_pairs_scored_total") == n * n
        assert snapshot.counter_total("reid_candidates_pruned_total") == 0

    def test_auto_goes_sparse_at_threshold(self):
        views = [[(user,)] for user in range(SPARSE_MIN_POPULATION)]
        metrics = MetricsRegistry()
        result = link_profiles(
            views, views, SequenceMatcher(), backend="serial", metrics=metrics
        )
        n = len(views)
        assert result.true_match_ranks == (1,) * n
        snapshot = metrics.snapshot()
        # Disjoint singleton views: each user scores only its true pair
        # and prunes every impostor.
        assert snapshot.counter_total("reid_pairs_scored_total") == n
        assert snapshot.counter_total("reid_candidates_pruned_total") == n * (n - 1)

    def test_custom_matcher_falls_back_to_dense(self):
        class InvertedMatcher:
            def score(self, view_a, view_b):
                return -SequenceMatcher().score(view_a, view_b)

        views = [[(user % 3,)] for user in range(SPARSE_MIN_POPULATION)]
        result = link_profiles(views, views, InvertedMatcher())
        dense = link_profiles(views, views, InvertedMatcher(), strategy="dense")
        assert result.true_match_ranks == dense.true_match_ranks

    def test_sparse_rejects_custom_matcher(self):
        class WeirdMatcher:
            def score(self, view_a, view_b):
                return 0.0

        with pytest.raises(ValueError, match="built-in matchers"):
            link_profiles([[(1,)]], [[(1,)]], WeirdMatcher(), strategy="sparse")

    def test_matcher_subclass_falls_back_to_dense(self):
        class ShiftedSequenceMatcher(SequenceMatcher):
            def score(self, view_a, view_b):
                return super().score(view_a, view_b) + 1.0

        views = [[(user % 2,)] for user in range(SPARSE_MIN_POPULATION)]
        result = link_profiles(views, views, ShiftedSequenceMatcher())
        dense = link_profiles(
            views, views, ShiftedSequenceMatcher(), strategy="dense"
        )
        assert result.true_match_ranks == dense.true_match_ranks

    def test_unknown_strategy_rejected(self):
        with pytest.raises(ValueError, match="unknown linkage strategy"):
            link_profiles([], [], SequenceMatcher(), strategy="quantum")
        assert "sparse" in LINKAGE_STRATEGIES

    def test_mismatched_population_rejected(self):
        with pytest.raises(ValueError, match="same population"):
            link_profiles([[(1,)]], [], SequenceMatcher())


class TestObservability:
    def test_span_records_strategy_and_work(self):
        spans = SpanRecorder()
        views = [[(user % 4,)] for user in range(SPARSE_MIN_POPULATION)]
        link_profiles(
            views, views, SequenceMatcher(), backend="serial", spans=spans
        )
        (span,) = spans.spans(SPAN_REID_LINKAGE)
        assert span.fields["strategy"] == "sparse"
        assert span.fields["users"] == SPARSE_MIN_POPULATION
        assert span.fields["pairs_scored"] > 0
        assert span.fields["candidates_pruned"] >= 0
