"""Unit tests for the network stack: log, cache, first/third-party split."""

from repro.browser.consent import ConsentLedger
from repro.browser.network import BrowserCache, NetworkLog, NetworkStack
from repro.util.urls import https


class TestNetworkStack:
    def test_fetch_logged(self):
        stack, log = NetworkStack(), NetworkLog()
        stack.fetch(https("www.site.com"), "site.com", 10, log)
        assert len(log) == 1
        record = log.records[0]
        assert record.at == 10
        assert not record.from_cache
        assert record.first_party

    def test_third_party_flag(self):
        stack, log = NetworkStack(), NetworkLog()
        record = stack.fetch(https("cdn.ads.net", "/x.js"), "site.com", 0, log)
        assert not record.first_party

    def test_cache_hit_on_second_fetch(self):
        stack, log = NetworkStack(), NetworkLog()
        url = https("cdn.ads.net", "/x.js")
        first = stack.fetch(url, "site.com", 0, log)
        second = stack.fetch(url, "site.com", 1, log)
        assert not first.from_cache
        assert second.from_cache

    def test_cache_clear_forces_reload(self):
        # §2.2: "We delete the browser cache to load again all objects."
        stack, log = NetworkStack(), NetworkLog()
        url = https("cdn.ads.net", "/x.js")
        stack.fetch(url, "site.com", 0, log)
        stack.cache.clear()
        assert not stack.fetch(url, "site.com", 1, log).from_cache

    def test_log_hosts_and_third_parties(self):
        stack, log = NetworkStack(), NetworkLog()
        stack.fetch(https("www.site.com"), "site.com", 0, log)
        stack.fetch(https("static.site.com", "/a.css"), "site.com", 0, log)
        stack.fetch(https("cdn.ads.net", "/x.js"), "site.com", 0, log)
        assert log.hosts() == {"www.site.com", "static.site.com", "cdn.ads.net"}
        assert log.third_party_domains("site.com") == {"ads.net"}


class TestBrowserCache:
    def test_membership(self):
        cache = BrowserCache()
        url = https("a.com", "/x")
        assert url not in cache
        cache.add(url)
        assert url in cache
        assert len(cache) == 1

    def test_distinct_paths_distinct_entries(self):
        cache = BrowserCache()
        cache.add(https("a.com", "/x"))
        assert https("a.com", "/y") not in cache


class TestConsentLedger:
    def test_grant_and_check(self):
        ledger = ConsentLedger()
        assert not ledger.is_granted("site.com")
        ledger.grant("site.com")
        assert ledger.is_granted("site.com")
        assert len(ledger) == 1

    def test_revoke(self):
        ledger = ConsentLedger()
        ledger.grant("site.com")
        ledger.revoke("site.com")
        assert not ledger.is_granted("site.com")

    def test_clear(self):
        ledger = ConsentLedger()
        ledger.grant("a.com")
        ledger.grant("b.com")
        ledger.clear()
        assert len(ledger) == 0
