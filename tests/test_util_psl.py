"""Unit tests for public-suffix / registrable-domain logic."""

import pytest

from repro.util.psl import (
    PublicSuffixList,
    etld_plus_one,
    registrable_domain,
    same_second_level,
    second_level_name,
)


class TestPublicSuffix:
    def test_single_label_suffix(self):
        assert PublicSuffixList().public_suffix("www.example.com") == "com"

    def test_multi_label_suffix(self):
        assert PublicSuffixList().public_suffix("shop.example.co.uk") == "co.uk"

    def test_unknown_tld_falls_back_to_last_label(self):
        assert PublicSuffixList().public_suffix("foo.weirdtld") == "weirdtld"

    def test_custom_rules(self):
        psl = PublicSuffixList(["my.zone"])
        assert psl.public_suffix("a.b.my.zone") == "my.zone"

    def test_rejects_single_label_rules(self):
        with pytest.raises(ValueError):
            PublicSuffixList(["com"])


class TestRegistrableDomain:
    @pytest.mark.parametrize(
        "hostname,expected",
        [
            ("www.example.com", "example.com"),
            ("example.com", "example.com"),
            ("a.b.c.example.org", "example.org"),
            ("www.shop.example.co.uk", "example.co.uk"),
            ("news.yandex.ru", "yandex.ru"),
            ("static.sub.site.co.jp", "site.co.jp"),
        ],
    )
    def test_extraction(self, hostname, expected):
        assert etld_plus_one(hostname) == expected

    def test_bare_suffix_returned_unchanged(self):
        assert etld_plus_one("com") == "com"
        assert etld_plus_one("co.uk") == "co.uk"

    def test_case_and_trailing_dot_normalised(self):
        assert etld_plus_one("WWW.Example.COM.") == "example.com"

    def test_alias(self):
        assert registrable_domain("www.foo.net") == etld_plus_one("www.foo.net")

    def test_empty_hostname_rejected(self):
        with pytest.raises(ValueError):
            etld_plus_one("")

    def test_malformed_hostname_rejected(self):
        with pytest.raises(ValueError):
            etld_plus_one("a..b.com")


class TestSecondLevelName:
    def test_paper_example(self):
        # §4: "the website and CP second-level domains are the same,
        # e.g. www.foo.com and ad.foo.net"
        assert second_level_name("www.foo.com") == "foo"
        assert second_level_name("ad.foo.net") == "foo"
        assert same_second_level("www.foo.com", "ad.foo.net")

    def test_different_names_do_not_match(self):
        assert not same_second_level("www.foo.com", "bar.com")

    def test_multi_label_suffix(self):
        assert second_level_name("www.shop.example.co.uk") == "example"

    def test_same_second_level_is_symmetric(self):
        assert same_second_level("a.x.com", "b.x.org") == same_second_level(
            "b.x.org", "a.x.com"
        )
