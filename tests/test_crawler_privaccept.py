"""Unit tests for the Priv-Accept banner interaction."""

from repro.crawler.privaccept import PrivAccept
from repro.web.banner import ConsentBanner


def banner(language: str, text: str) -> ConsentBanner:
    return ConsentBanner(language, text, None, True)


class TestDetection:
    def test_no_banner(self):
        detection = PrivAccept().detect_and_accept(None)
        assert not detection.banner_found
        assert not detection.accept_clicked
        assert not detection.missed

    def test_english_standard_phrase(self):
        detection = PrivAccept().detect_and_accept(banner("en", "Accept all"))
        assert detection.accept_clicked
        assert detection.matched_language == "en"
        assert detection.matched_keyword == "accept all"

    def test_all_supported_languages(self):
        samples = {
            "en": "I agree",
            "fr": "Tout accepter",
            "es": "Aceptar todo",
            "de": "Alle akzeptieren",
            "it": "Accetta tutto",
        }
        tool = PrivAccept()
        for language, text in samples.items():
            detection = tool.detect_and_accept(banner(language, text))
            assert detection.accept_clicked, language

    def test_unsupported_language_missed(self):
        for language, text in (("ru", "Принять все"), ("ja", "すべて同意する")):
            detection = PrivAccept().detect_and_accept(banner(language, text))
            assert detection.banner_found
            assert not detection.accept_clicked
            assert detection.missed

    def test_odd_wording_missed(self):
        # "Sounds good" carries no accept keyword — the 5-8% miss case.
        detection = PrivAccept().detect_and_accept(banner("en", "Sounds good"))
        assert detection.missed

    def test_cross_language_button(self):
        # An English button on a Japanese site still matches: the scanner
        # tries every language.
        detection = PrivAccept().detect_and_accept(banner("ja", "Accept cookies"))
        assert detection.accept_clicked

    def test_no_substring_false_positives(self):
        detection = PrivAccept().detect_and_accept(
            banner("en", "We find these terms unacceptable")
        )
        assert not detection.accept_clicked

    def test_custom_keyword_lists(self):
        tool = PrivAccept({"xx": ("ok ok",)})
        assert tool.supported_languages == ("xx",)
        assert tool.detect_and_accept(banner("xx", "OK OK!")).accept_clicked


class TestAccuracy:
    def test_matches_published_band(self, world):
        # Footnote 5: "it is 92—95% accurate with banners in such
        # languages" — our generated odd-phrase rate lands in that band.
        banners = [s.banner for s in world.websites if s.banner is not None]
        accuracy = PrivAccept().measure_accuracy(banners)
        assert 0.90 <= accuracy <= 0.97

    def test_empty_population(self):
        assert PrivAccept().measure_accuracy([]) == 0.0

    def test_unsupported_languages_excluded(self):
        banners = [ConsentBanner("ja", "すべて同意する", None, True)]
        assert PrivAccept().measure_accuracy(banners) == 0.0


class TestNegativeButtons:
    def _banner_with_buttons(self, accept, others, language="en"):
        return ConsentBanner(language, accept, None, True, tuple(others))

    def test_reject_button_not_clicked(self):
        # "Reject all" contains no accept keyword, but also guard the
        # explicit negative path.
        tool = PrivAccept()
        assert tool.is_negative("Reject all")
        assert tool.is_negative("Alle ablehnen")
        assert tool.is_negative("Cookie settings")
        assert not tool.is_negative("Accept all")

    def test_accept_found_despite_reject_first_in_dom(self):
        detection = PrivAccept().detect_and_accept(
            self._banner_with_buttons("Accept all", ["Reject all", "Cookie settings"])
        )
        assert detection.accept_clicked
        assert detection.matched_keyword == "accept all"

    def test_ambiguous_button_skipped(self):
        # A button reading "accept or reject in settings" carries both an
        # accept keyword and negative markers: skipping it is the safe
        # behaviour, so only the real accept button matches.
        detection = PrivAccept().detect_and_accept(
            self._banner_with_buttons(
                "I agree", ["Accept or reject in settings"]
            )
        )
        assert detection.accept_clicked
        assert detection.matched_keyword == "agree"

    def test_only_negative_buttons_is_a_miss(self):
        detection = PrivAccept().detect_and_accept(
            self._banner_with_buttons("Manage preferences", ["Reject all"])
        )
        assert detection.missed

    def test_html_path_agrees_with_structured_path(self, world):
        # The DOM-scanning path and the structured path must reach the
        # same verdict on every generated page.
        tool = PrivAccept()
        checked = 0
        for site in world.websites[:400]:
            if not site.reachable or site.redirect_to is not None:
                continue
            page = site.build_page(world)
            structured = tool.detect_and_accept(site.banner)
            from_html = tool.detect_from_html(page.render_html())
            assert from_html.banner_found == structured.banner_found
            assert from_html.accept_clicked == structured.accept_clicked
            checked += 1
        assert checked > 200

    def test_html_path_no_banner(self):
        detection = PrivAccept().detect_from_html("<html><body></body></html>")
        assert not detection.banner_found

    def test_html_path_clicks_accept_not_reject(self):
        html = (
            '<div class="consent-banner">'
            "<button>Reject all</button><button>Accept all</button></div>"
        )
        detection = PrivAccept().detect_from_html(html)
        assert detection.accept_clicked
        assert detection.matched_keyword == "accept all"

    def test_generated_banners_never_accept_via_reject(self, world):
        tool = PrivAccept()
        for site in world.websites[:800]:
            if site.banner is None:
                continue
            detection = tool.detect_and_accept(site.banner)
            if detection.accept_clicked:
                assert not tool.is_negative(site.banner.accept_text)
