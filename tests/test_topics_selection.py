"""Unit tests for epoch top-5 computation and per-caller answers.

These pin the Topics API semantics of paper §2.1: top-5 per epoch, one
topic per each of the last three epochs, 5% noise, and the observed-by
filter.
"""

import pytest

from repro.browser.topics.history import BrowsingHistory
from repro.browser.topics.selection import (
    EPOCHS_PER_CALL,
    EpochTopicsSelector,
    NOISE_PROBABILITY,
    TOP_TOPICS_PER_EPOCH,
)
from repro.taxonomy.classifier import SiteClassifier
from repro.util.timeline import EPOCH_DURATION


@pytest.fixture
def classifier() -> SiteClassifier:
    classifier = SiteClassifier()
    # Pin a handful of sites to known topics so counts are controllable.
    for index, host in enumerate(
        ("news.com", "shop.com", "cars.com", "food.com", "games.com", "music.com"),
        start=1,
    ):
        classifier.add_override(host, [index])
    return classifier


def observe_n_times(history, site, caller, epoch, times):
    for i in range(times):
        at = epoch * EPOCH_DURATION + i
        history.record_page_visit(site, at)
        history.record_observation(site, caller, at)


class TestEpochTopics:
    def test_top5_ranked_by_visits(self, classifier):
        selector = EpochTopicsSelector(classifier, user_seed=1)
        history = BrowsingHistory()
        observe_n_times(history, "news.com", "cp.com", 0, 5)
        observe_n_times(history, "shop.com", "cp.com", 0, 3)
        observe_n_times(history, "cars.com", "cp.com", 0, 1)
        digest = selector.epoch_topics(history, 0)
        assert digest.top_topics[0] == 1  # news.com's topic, most visited
        assert digest.top_topics[1] == 2
        assert digest.top_topics[2] == 3

    def test_always_five_topics(self, classifier):
        selector = EpochTopicsSelector(classifier, user_seed=1)
        history = BrowsingHistory()
        observe_n_times(history, "news.com", "cp.com", 0, 1)
        digest = selector.epoch_topics(history, 0)
        assert len(digest.top_topics) == TOP_TOPICS_PER_EPOCH
        assert digest.padded

    def test_padding_topics_unique(self, classifier):
        selector = EpochTopicsSelector(classifier, user_seed=1)
        digest = selector.epoch_topics(BrowsingHistory(), 0)
        assert len(set(digest.top_topics)) == TOP_TOPICS_PER_EPOCH

    def test_rich_epoch_not_padded(self, classifier):
        selector = EpochTopicsSelector(classifier, user_seed=1)
        history = BrowsingHistory()
        for host in ("news.com", "shop.com", "cars.com", "food.com", "games.com"):
            observe_n_times(history, host, "cp.com", 0, 2)
        assert not selector.epoch_topics(history, 0).padded

    def test_digest_cached(self, classifier):
        selector = EpochTopicsSelector(classifier, user_seed=1)
        history = BrowsingHistory()
        observe_n_times(history, "news.com", "cp.com", 0, 1)
        first = selector.epoch_topics(history, 0)
        observe_n_times(history, "shop.com", "cp.com", 0, 9)
        assert selector.epoch_topics(history, 0) is first
        selector.invalidate_epoch(0)
        assert selector.epoch_topics(history, 0) is not first


class TestCallerAnswers:
    def test_empty_history_returns_nothing_mostly(self, classifier):
        # Fresh profile: across many callers, answers appear only at the
        # 5% noise rate — the exact situation of the paper's 1-day crawl.
        selector = EpochTopicsSelector(classifier, user_seed=1)
        history = BrowsingHistory()
        answered = sum(
            bool(selector.topics_for_caller(history, f"cp{i}.com", 3))
            for i in range(2000)
        )
        rate = answered / 2000
        assert rate < 3 * NOISE_PROBABILITY

    def test_observer_gets_topic(self, classifier):
        selector = EpochTopicsSelector(classifier, user_seed=1)
        history = BrowsingHistory()
        for epoch in range(3):
            observe_n_times(history, "news.com", "cp.com", epoch, 3)
        topics = selector.topics_for_caller(history, "cp.com", 3)
        assert topics
        assert all(t.topic_id in classifier.taxonomy for t in topics)

    def test_dominant_topic_surfaces_for_observers(self, classifier):
        # With a full (unpadded) top-5, observers of the dominant site get
        # its topic for some epoch pick.
        selector = EpochTopicsSelector(classifier, user_seed=1)
        history = BrowsingHistory()
        hosts = ("news.com", "shop.com", "cars.com", "food.com", "games.com")
        for epoch in range(3):
            for host in hosts:
                observe_n_times(history, host, "cp.com", epoch, 2)
        topics = selector.topics_for_caller(history, "cp.com", 3)
        assert topics
        assert all(1 <= t.topic_id <= 6 or t.is_noise for t in topics)

    def test_non_observer_filtered(self, classifier):
        # The observed-by requirement: a caller that never saw the user
        # gets no real topics even when history is rich.
        selector = EpochTopicsSelector(classifier, user_seed=1)
        history = BrowsingHistory()
        for epoch in range(3):
            observe_n_times(history, "news.com", "observer.com", epoch, 3)
        stranger_real = [
            t
            for i in range(200)
            for t in selector.topics_for_caller(history, f"stranger{i}.com", 3)
            if not t.is_noise
        ]
        assert stranger_real == []

    def test_at_most_three_topics(self, classifier):
        selector = EpochTopicsSelector(classifier, user_seed=1)
        history = BrowsingHistory()
        for epoch in range(6):
            for host in ("news.com", "shop.com", "cars.com"):
                observe_n_times(history, host, "cp.com", epoch, 2)
        topics = selector.topics_for_caller(history, "cp.com", 6)
        assert 1 <= len(topics) <= EPOCHS_PER_CALL

    def test_duplicates_collapsed(self, classifier):
        # Same dominant topic in all three epochs → the spec deduplicates.
        selector = EpochTopicsSelector(classifier, user_seed=1)
        history = BrowsingHistory()
        for epoch in range(3):
            observe_n_times(history, "news.com", "cp.com", epoch, 5)
        topics = selector.topics_for_caller(history, "cp.com", 3)
        ids = [t.topic_id for t in topics]
        assert len(set(ids)) == len(ids)

    def test_answers_stable_within_epoch(self, classifier):
        selector = EpochTopicsSelector(classifier, user_seed=1)
        history = BrowsingHistory()
        for epoch in range(3):
            observe_n_times(history, "news.com", "cp.com", epoch, 3)
        first = selector.topics_for_caller(history, "cp.com", 3)
        second = selector.topics_for_caller(history, "cp.com", 3)
        assert first == second

    def test_noise_rate_near_five_percent(self, classifier):
        selector = EpochTopicsSelector(classifier, user_seed=1)
        history = BrowsingHistory()
        for epoch in range(3):
            for host in ("news.com", "shop.com"):
                observe_n_times(history, host, "cp.com", epoch, 2)
        # Noise is per (caller, epoch); measure over many virtual callers
        # that all observed everything.
        noisy = real = 0
        for i in range(700):
            caller = f"cp{i}.com"
            for epoch in range(3):
                observe_n_times(history, "news.com", caller, epoch, 1)
            for topic in selector.topics_for_caller(history, caller, 3):
                if topic.is_noise:
                    noisy += 1
                else:
                    real += 1
        rate = noisy / (noisy + real)
        assert 0.02 < rate < 0.10

    def test_different_users_different_answers(self, classifier):
        history = BrowsingHistory()
        for epoch in range(3):
            for host in ("news.com", "shop.com", "cars.com", "food.com", "games.com"):
                observe_n_times(history, host, "cp.com", epoch, 1)
        picks_a = EpochTopicsSelector(classifier, user_seed=1).topics_for_caller(
            history, "cp.com", 3
        )
        differing = any(
            EpochTopicsSelector(classifier, user_seed=seed).topics_for_caller(
                history, "cp.com", 3
            )
            != picks_a
            for seed in range(2, 12)
        )
        assert differing
