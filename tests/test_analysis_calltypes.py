"""Tests for the call-type breakdown analysis."""

import pytest

from repro.analysis.calltypes import (
    CallTypeMix,
    aggregate_mix,
    call_type_mix_by_caller,
    legitimate_vs_anomalous_mix,
    render_call_types,
)
from repro.browser.topics.types import ApiCallType


class TestCallTypeMix:
    def test_shares(self):
        mix = CallTypeMix("x", {"javascript": 6, "fetch": 3, "iframe": 1})
        assert mix.total == 10
        assert mix.share(ApiCallType.JAVASCRIPT) == 0.6
        assert mix.share(ApiCallType.IFRAME) == 0.1
        assert mix.dominant == "javascript"

    def test_empty(self):
        mix = CallTypeMix("x", {})
        assert mix.total == 0
        assert mix.share(ApiCallType.FETCH) == 0.0
        assert mix.dominant == "none"


class TestDatasetAnalysis:
    def test_per_caller_sorted_by_volume(self, crawl):
        mixes = call_type_mix_by_caller(crawl.d_aa)
        totals = [mix.total for mix in mixes]
        assert totals == sorted(totals, reverse=True)

    def test_min_calls_filter(self, crawl):
        mixes = call_type_mix_by_caller(crawl.d_aa, min_calls=50)
        assert all(mix.total >= 50 for mix in mixes)

    def test_doubleclick_fetch_heavy(self, crawl):
        # The catalogue gives doubleclick a 70% fetch mix.
        mixes = call_type_mix_by_caller(crawl.d_aa)
        dbl = next(m for m in mixes if m.caller == "doubleclick.net")
        assert dbl.share(ApiCallType.FETCH) > 0.5

    def test_teads_iframe_heavy(self, crawl):
        mixes = call_type_mix_by_caller(crawl.d_aa, min_calls=20)
        teads = next((m for m in mixes if m.caller == "teads.tv"), None)
        if teads is None:
            pytest.skip("teads below threshold at this scale")
        assert teads.share(ApiCallType.IFRAME) > 0.3

    def test_caller_filter(self, crawl):
        only = {"criteo.com"}
        mixes = call_type_mix_by_caller(crawl.d_aa, callers=only, min_calls=1)
        assert [m.caller for m in mixes] == ["criteo.com"]

    def test_aggregate_counts_everything(self, crawl):
        mix = aggregate_mix(crawl.d_aa)
        assert mix.total == sum(len(r.calls) for r in crawl.d_aa)

    def test_legit_vs_anomalous_contrast(self, crawl):
        legit, anomalous = legitimate_vs_anomalous_mix(
            crawl.d_aa, crawl.allowed_domains, crawl.survey
        )
        # §4: anomalous calls are 100% JavaScript; legitimate callers use
        # all three surfaces.
        assert anomalous.share(ApiCallType.JAVASCRIPT) == 1.0
        assert legit.share(ApiCallType.FETCH) > 0.1
        assert legit.share(ApiCallType.IFRAME) > 0.02

    def test_render(self, crawl):
        text = render_call_types(call_type_mix_by_caller(crawl.d_aa)[:5])
        assert "fetch" in text and "iframe" in text
