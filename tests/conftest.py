"""Shared fixtures.

World generation and crawling are the expensive pieces, so a small world
and its campaign results are built once per session and shared read-only
across the suite.
"""

from __future__ import annotations

import pytest

from repro.crawler.campaign import CrawlCampaign, CrawlResult
from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import StudyResult, run_full_study
from repro.web.config import WorldConfig
from repro.web.generator import SyntheticWeb, WebGenerator

#: Reduced-world size used across the suite — large enough that every
#: named third party and rogue variant appears, small enough to be fast.
SMALL_WORLD_SITES = 6_000


@pytest.fixture(scope="session")
def small_config() -> WorldConfig:
    return WorldConfig.small(SMALL_WORLD_SITES, seed=1)


@pytest.fixture(scope="session")
def world(small_config: WorldConfig) -> SyntheticWeb:
    return WebGenerator(small_config).generate()


@pytest.fixture(scope="session")
def crawl(world: SyntheticWeb) -> CrawlResult:
    return CrawlCampaign(world, corrupt_allowlist=True).run()


@pytest.fixture(scope="session")
def study(small_config: WorldConfig, world: SyntheticWeb, crawl: CrawlResult) -> StudyResult:
    config = ExperimentConfig(world=small_config)
    return run_full_study(config, world=world, crawl=crawl)


@pytest.fixture(scope="session")
def healthy_crawl(world: SyntheticWeb) -> CrawlResult:
    """A campaign run with the allow-list intact (the ablation setup)."""
    return CrawlCampaign(world, corrupt_allowlist=False).run()
