"""Unit tests for the Sec-Browsing-Topics header codec."""

import pytest

from repro.browser.topics.headers import (
    OBSERVE_TRUE,
    ParsedTopicsHeader,
    format_topics_header,
    observe_requested,
    parse_topics_header,
)
from repro.browser.topics.types import Topic


def topic(tid: int, taxonomy: str = "2", model: str = "1") -> Topic:
    return Topic(topic_id=tid, taxonomy_version=taxonomy, model_version=model)


class TestFormat:
    def test_single_topic(self):
        header = format_topics_header([topic(42)])
        assert header.startswith("(42);v=chrome.1:2:1")

    def test_topics_grouped_by_version(self):
        header = format_topics_header([topic(3), topic(1), topic(2)])
        assert "(1 2 3);v=chrome.1:2:1" in header

    def test_mixed_versions_separate_entries(self):
        header = format_topics_header([topic(1), topic(2, taxonomy="3")])
        assert "(1);v=chrome.1:2:1" in header
        assert "(2);v=chrome.1:3:1" in header

    def test_empty_topics_still_padded(self):
        header = format_topics_header([])
        assert header.startswith("();p=P")

    def test_padding_always_present(self):
        for topics in ([], [topic(1)], [topic(1), topic(2)]):
            assert ";p=P" in format_topics_header(topics)


class TestParse:
    def test_round_trip(self):
        header = format_topics_header([topic(7), topic(9)])
        groups = parse_topics_header(header)
        assert groups == [
            ParsedTopicsHeader(
                topic_ids=(7, 9), taxonomy_version="2", model_version="1"
            )
        ]

    def test_round_trip_empty(self):
        assert parse_topics_header(format_topics_header([])) == []

    def test_padding_dropped(self):
        groups = parse_topics_header("(1);v=chrome.1:2:1, ();p=P0000")
        assert len(groups) == 1

    def test_malformed_rejected(self):
        with pytest.raises(ValueError):
            parse_topics_header("not a header")
        with pytest.raises(ValueError):
            parse_topics_header("(1 two);v=chrome.1:2:1")


class TestObserveHeader:
    def test_opt_in(self):
        assert observe_requested(OBSERVE_TRUE)
        assert observe_requested(" ?1 ")

    def test_absent_or_other(self):
        assert not observe_requested(None)
        assert not observe_requested("?0")
        assert not observe_requested("true")
        assert not observe_requested("")
