"""Tests for the §4 anomalous-usage analysis on the shared study."""

from repro.analysis.anomalous import (
    ATTRIBUTION_REDIRECT,
    ATTRIBUTION_SAME_ENTITY,
    ATTRIBUTION_SAME_SLD,
    ATTRIBUTION_UNEXPLAINED,
    analyze_anomalous,
    anomalous_calls,
    attribute_call,
)
from repro.crawler.dataset import CallRecord, VisitRecord
from repro.web.entities import EntityDatabase


def record_for(domain, final=None, calls=()):
    final = final or domain
    return VisitRecord(
        rank=1,
        domain=domain,
        final_domain=final,
        url=f"https://www.{domain}/",
        final_url=f"https://www.{final}/",
        phase="after-accept",
        banner_present=False,
        banner_language=None,
        accept_clicked=False,
        cmp=None,
        third_parties=(),
        calls=tuple(calls),
    )


def call_by(caller, site):
    return CallRecord(
        caller=caller,
        caller_host=f"www.{caller}",
        site=site,
        call_type="javascript",
        at=0,
        decision="allowed-database-corrupt",
        topics_returned=0,
    )


class TestAttribution:
    def test_same_site(self):
        record = record_for("foo.com")
        assert (
            attribute_call(record, call_by("foo.com", "foo.com"), EntityDatabase())
            == ATTRIBUTION_SAME_SLD
        )

    def test_sibling_domain(self):
        # The paper's www.foo.com / ad.foo.net example.
        record = record_for("foo.com")
        assert (
            attribute_call(record, call_by("foo.net", "foo.com"), EntityDatabase())
            == ATTRIBUTION_SAME_SLD
        )

    def test_same_entity(self):
        # The paper's windows.com / microsoft.com example.
        record = record_for("windows.com")
        assert (
            attribute_call(
                record, call_by("microsoft.com", "windows.com"), EntityDatabase()
            )
            == ATTRIBUTION_SAME_ENTITY
        )

    def test_redirect_target(self):
        entities = EntityDatabase(groups={"Org": ["foo.com", "foo-portal.com"]})
        record = record_for("foo.com", final="foo-portal.com")
        assert (
            attribute_call(record, call_by("foo-portal.com", "foo.com"), entities)
            == ATTRIBUTION_REDIRECT
        )

    def test_redirect_without_entity_data_still_attributed(self):
        record = record_for("foo.com", final="bar.com")
        assert (
            attribute_call(record, call_by("bar.com", "foo.com"), EntityDatabase())
            == ATTRIBUTION_REDIRECT
        )

    def test_unexplained(self):
        record = record_for("foo.com")
        assert (
            attribute_call(record, call_by("mystery.com", "foo.com"), EntityDatabase())
            == ATTRIBUTION_UNEXPLAINED
        )


class TestStudyReport:
    def test_same_sld_dominates(self, study):
        # Paper: 72% of anomalous calls share the site's SLD.
        fraction = study.anomalous.attribution_fraction(ATTRIBUTION_SAME_SLD)
        assert 0.62 <= fraction <= 0.82

    def test_everything_attributed(self, study):
        # The paper's manual check explained every case.
        assert study.anomalous.attribution_counts.get(ATTRIBUTION_UNEXPLAINED, 0) == 0

    def test_all_javascript(self, study):
        # Paper: "all these bizarre calls use the JavaScript
        # browsingTopics() function".
        assert study.anomalous.javascript_fraction == 1.0

    def test_gtm_on_95_percent(self, study):
        assert 0.90 <= study.anomalous.gtm_site_fraction <= 0.99

    def test_calls_exceed_callers(self, study):
        # Some rogue tags call twice per page (the paper logs repeats).
        assert study.anomalous.total_calls > study.anomalous.distinct_callers

    def test_caller_count_tracks_affected_sites(self, study):
        # Nearly every anomalous site contributes exactly one unique CP.
        assert (
            abs(study.anomalous.distinct_callers - study.anomalous.affected_sites)
            <= 0.05 * study.anomalous.affected_sites
        )

    def test_anomalous_callers_not_allowed(self, crawl):
        calls = anomalous_calls(crawl.d_aa, crawl.allowed_domains, crawl.survey)
        assert all(
            call.caller not in crawl.allowed_domains for _, call in calls
        )

    def test_healthy_allowlist_ablation(self, healthy_crawl, world):
        # With the allow-list intact, the browser blocks every anomalous
        # call — the paper's observability argument in reverse.
        report = analyze_anomalous(
            healthy_crawl.d_aa,
            healthy_crawl.allowed_domains,
            healthy_crawl.survey,
            world.entities,
        )
        assert report.total_calls == 0

    def test_empty_dataset(self, world, crawl):
        from repro.crawler.dataset import Dataset

        report = analyze_anomalous(
            Dataset("empty"), crawl.allowed_domains, crawl.survey, world.entities
        )
        assert report.total_calls == 0
        assert report.gtm_site_fraction == 0.0
        assert report.attribution_fraction(ATTRIBUTION_SAME_SLD) == 0.0
