"""Unit tests for dataset records, queries and JSONL persistence."""

import pytest

from repro.attestation.allowlist import GatingDecision
from repro.browser.topics.manager import TopicsApiCall
from repro.browser.topics.types import ApiCallType
from repro.crawler.dataset import (
    AmbiguousDomainError,
    CallRecord,
    Dataset,
    PHASE_AFTER,
    PHASE_BEFORE,
    VisitRecord,
)


def make_call(caller="criteo.com", site="news.com", decision="allowed-enrolled"):
    return CallRecord(
        caller=caller,
        caller_host=f"bid.{caller}",
        site=site,
        call_type="fetch",
        at=100,
        decision=decision,
        topics_returned=0,
    )


def make_record(domain="news.com", calls=(), third_parties=("criteo.com",), **kw):
    defaults = dict(
        rank=1,
        domain=domain,
        final_domain=domain,
        url=f"https://www.{domain}/",
        final_url=f"https://www.{domain}/",
        phase=PHASE_BEFORE,
        banner_present=True,
        banner_language="en",
        accept_clicked=False,
        cmp="OneTrust",
        third_parties=tuple(third_parties),
        calls=tuple(calls),
    )
    defaults.update(kw)
    return VisitRecord(**defaults)


class TestCallRecord:
    def test_from_api_call(self):
        api_call = TopicsApiCall(
            caller="criteo.com",
            caller_host="bid.criteo.com",
            site="news.com",
            call_type=ApiCallType.FETCH,
            at=42,
            decision=GatingDecision.ALLOWED_ENROLLED,
            topics_returned=2,
        )
        record = CallRecord.from_api_call(api_call)
        assert record.caller == "criteo.com"
        assert record.call_type == "fetch"
        assert record.allowed
        assert record.api_call_type is ApiCallType.FETCH

    def test_blocked_decision(self):
        record = make_call(decision="blocked-not-enrolled")
        assert not record.allowed

    def test_corrupt_decision_allowed(self):
        record = make_call(decision="allowed-database-corrupt")
        assert record.allowed


class TestVisitRecord:
    def test_redirected(self):
        record = make_record(final_domain="other.com")
        assert record.redirected
        assert not make_record().redirected

    def test_has_topics_call(self):
        assert make_record(calls=[make_call()]).has_topics_call
        assert not make_record().has_topics_call

    def test_json_round_trip(self):
        record = make_record(calls=[make_call()], phase=PHASE_AFTER)
        assert VisitRecord.from_json(record.to_json()) == record

    def test_json_round_trip_none_fields(self):
        record = make_record(banner_language=None, cmp=None)
        assert VisitRecord.from_json(record.to_json()) == record


class TestDataset:
    @pytest.fixture
    def dataset(self) -> Dataset:
        ds = Dataset("D_BA")
        ds.add(make_record("a.com", calls=[make_call("criteo.com", "a.com")]))
        ds.add(
            make_record(
                "b.com",
                calls=[
                    make_call("criteo.com", "b.com"),
                    make_call("taboola.com", "b.com"),
                ],
                third_parties=("criteo.com", "taboola.com"),
            )
        )
        ds.add(make_record("c.com", third_parties=("gtm.com",)))
        return ds

    def test_len_and_iter(self, dataset):
        assert len(dataset) == 3
        assert [r.domain for r in dataset] == ["a.com", "b.com", "c.com"]

    def test_unique_third_parties(self, dataset):
        assert dataset.unique_third_parties() == {
            "criteo.com",
            "taboola.com",
            "gtm.com",
        }

    def test_calling_parties(self, dataset):
        assert dataset.calling_parties() == {"criteo.com", "taboola.com"}

    def test_sites_with_calls(self, dataset):
        assert dataset.sites_with_calls() == {"a.com", "b.com"}

    def test_presence_of(self, dataset):
        assert dataset.presence_of("criteo.com") == {"a.com", "b.com"}
        assert dataset.presence_of("nobody.com") == set()

    def test_callers_by_site_count(self, dataset):
        counts = dataset.callers_by_site_count()
        assert counts == {"criteo.com": 2, "taboola.com": 1}

    def test_by_domain_index(self, dataset):
        assert dataset.by_domain("b.com").domain == "b.com"
        assert dataset.by_domain("zzz.com") is None

    def test_by_domain_index_refreshes_after_add(self, dataset):
        assert dataset.by_domain("new.com") is None
        dataset.add(make_record("new.com"))
        assert dataset.by_domain("new.com") is not None

    def test_by_domain_ambiguous_raises(self, dataset):
        """Regression: repeat-visit campaigns put several records under
        one domain; silently returning the first made analyses quietly
        wrong.  The single-record lookup now refuses to guess."""
        dataset.add(make_record("b.com", phase=PHASE_AFTER))
        with pytest.raises(AmbiguousDomainError, match="b.com"):
            dataset.by_domain("b.com")
        # Unambiguous domains keep working through the same index.
        assert dataset.by_domain("a.com").domain == "a.com"

    def test_all_by_domain_returns_every_record_in_order(self, dataset):
        repeat = make_record("b.com", phase=PHASE_AFTER)
        dataset.add(repeat)
        records = dataset.all_by_domain("b.com")
        assert len(records) == 2
        assert [r.phase for r in records] == [PHASE_BEFORE, PHASE_AFTER]
        assert dataset.all_by_domain("zzz.com") == ()

    def test_iter_calls(self, dataset):
        pairs = list(dataset.iter_calls())
        assert len(pairs) == 3
        assert all(call.site == record.domain for record, call in pairs)

    def test_jsonl_round_trip(self, dataset, tmp_path):
        path = tmp_path / "d_ba.jsonl"
        dataset.to_jsonl(path)
        loaded = Dataset.from_jsonl("D_BA", path)
        assert loaded.records == dataset.records
