"""Tests for caller classification and Table 1 (shared-study validation)."""

from repro.analysis.classify import (
    CallerStatus,
    build_table1,
    callers_by_status,
    classify_caller,
)
from repro.web.thirdparty import DISTILLERY_DOMAIN


class TestClassifyCaller:
    def test_all_four_cells(self, crawl):
        survey = crawl.survey
        allowed = crawl.allowed_domains
        attested_allowed = next(
            d for d in allowed if survey.is_attested(d)
        )
        unattested_allowed = next(
            d for d in allowed if not survey.is_attested(d)
        )
        assert (
            classify_caller(attested_allowed, allowed, survey)
            is CallerStatus.ALLOWED_ATTESTED
        )
        assert (
            classify_caller(unattested_allowed, allowed, survey)
            is CallerStatus.ALLOWED_UNATTESTED
        )
        assert (
            classify_caller(DISTILLERY_DOMAIN, allowed, survey)
            is CallerStatus.NOT_ALLOWED_ATTESTED
        )
        assert (
            classify_caller("random-site.example", allowed, survey)
            is CallerStatus.NOT_ALLOWED
        )

    def test_only_allowed_attested_legitimate(self):
        assert CallerStatus.ALLOWED_ATTESTED.is_legitimate
        for status in CallerStatus:
            if status is not CallerStatus.ALLOWED_ATTESTED:
                assert not status.is_legitimate


class TestTable1:
    def test_allowlist_rows(self, study, small_config):
        assert study.table1.allowed_total == small_config.allowed_total
        assert study.table1.allowed_unattested == small_config.unattested_allowed

    def test_distillery_is_the_not_allowed_attested_cp(self, study):
        assert study.table1.aa_not_allowed_attested == 1
        assert study.table1.aa_not_allowed_attested_callers == (DISTILLERY_DOMAIN,)

    def test_active_cp_count_near_47(self, study):
        # At reduced scale a couple of tiny CPs may go unseen.
        assert 40 <= study.table1.aa_allowed_attested <= 47

    def test_ba_subset_of_aa_for_legit(self, crawl, study):
        # Every legit CP calling before consent also calls after somewhere.
        assert study.table1.ba_allowed_attested <= study.table1.aa_allowed_attested

    def test_anomalous_cps_scale_with_rogue_rate(self, study, crawl, small_config):
        expected = len(crawl.d_aa) * small_config.rogue_rate
        assert 0.7 * expected <= study.table1.aa_not_allowed <= 1.3 * expected

    def test_rows_layout(self, study):
        rows = study.table1.as_rows()
        assert len(rows) == 7
        assert rows[0][1] == "Allowed"
        assert [r[0] for r in rows] == ["", "", "D_AA", "D_AA", "D_AA", "D_BA", "D_BA"]

    def test_grouping_consistency(self, crawl, study):
        grouped = callers_by_status(
            crawl.d_aa, crawl.allowed_domains, crawl.survey
        )
        total = sum(len(cps) for cps in grouped.values())
        assert total == len(crawl.d_aa.calling_parties())
        assert len(grouped[CallerStatus.ALLOWED_ATTESTED]) == (
            study.table1.aa_allowed_attested
        )

    def test_table_from_scratch_matches_study(self, crawl, study):
        table = build_table1(
            crawl.d_ba, crawl.d_aa, crawl.allowed_domains, crawl.survey
        )
        assert table == study.table1
