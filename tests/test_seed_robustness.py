"""Seed robustness: calibration must hold for any seed, not just seed 1.

The paper-matching bands are properties of the model, so three independent
worlds (different seeds, reduced scale) must all land inside slightly
widened bands.
"""

import pytest

from repro.analysis.classify import build_table1
from repro.analysis.pervasiveness import legitimate_callers, share_of_sites_with_call
from repro.crawler.campaign import CrawlCampaign
from repro.web.config import WorldConfig
from repro.web.generator import WebGenerator

SEEDS = (11, 42, 2024)


@pytest.fixture(scope="module", params=SEEDS)
def seeded_crawl(request):
    world = WebGenerator(WorldConfig.small(3_000, seed=request.param)).generate()
    return world, CrawlCampaign(world, corrupt_allowlist=True).run()


class TestSeedRobustness:
    def test_accept_rate_band(self, seeded_crawl):
        _, crawl = seeded_crawl
        assert 0.28 <= crawl.report.accept_rate <= 0.42

    def test_failure_rate_band(self, seeded_crawl):
        _, crawl = seeded_crawl
        rate = crawl.report.failed / crawl.report.targets
        assert 0.10 <= rate <= 0.17

    def test_allowlist_structure(self, seeded_crawl):
        _, crawl = seeded_crawl
        assert len(crawl.allowed_domains) == 193
        attested = sum(
            1 for d in crawl.allowed_domains if crawl.survey.is_attested(d)
        )
        assert attested == 181

    def test_table1_shape(self, seeded_crawl):
        _, crawl = seeded_crawl
        table = build_table1(
            crawl.d_ba, crawl.d_aa, crawl.allowed_domains, crawl.survey
        )
        assert 38 <= table.aa_allowed_attested <= 47
        assert table.aa_not_allowed_attested == 1
        aa_rate = table.aa_not_allowed / len(crawl.d_aa)
        assert 0.13 <= aa_rate <= 0.23

    def test_call_share_band(self, seeded_crawl):
        _, crawl = seeded_crawl
        legit = legitimate_callers(crawl.allowed_domains, crawl.survey)
        share = share_of_sites_with_call(crawl.d_aa, legit)
        assert 0.40 <= share <= 0.62

    def test_anomalous_mechanics(self, seeded_crawl):
        world, crawl = seeded_crawl
        from repro.analysis.anomalous import analyze_anomalous

        report = analyze_anomalous(
            crawl.d_aa, crawl.allowed_domains, crawl.survey, world.entities
        )
        assert report.javascript_fraction == 1.0
        assert 0.85 <= report.gtm_site_fraction <= 1.0
        assert 0.6 <= report.attribution_fraction("same-second-level-domain") <= 0.85
