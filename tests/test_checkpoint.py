"""Unit tests for the checkpoint layer: format, store, policies.

These cover the durability plumbing in isolation — serialisation
round-trips, crash-safe write ordering, corruption detection, campaign
fingerprinting — while ``test_resumable_crawl.py`` exercises the full
kill-and-resume story end to end.
"""

from __future__ import annotations

import json

import pytest

from repro.browser.browser import Browser, state_digest_of
from repro.crawler.campaign import CrawlReport
from repro.crawler.checkpoint import (
    CHECKPOINT_FORMAT_VERSION,
    CheckpointError,
    CheckpointStore,
    MANIFEST_FILE,
    MissingRange,
    PartialManifest,
    RetryPolicy,
    ShardCheckpoint,
    campaign_fingerprint,
    restore_datasets,
)
from repro.util.timeline import SimClock
from repro.web.config import WorldConfig
from repro.web.generator import WebGenerator


@pytest.fixture(scope="module")
def tiny_world():
    return WebGenerator(WorldConfig.small(200, seed=5)).generate()


def _browser_after_visits(world, count: int) -> Browser:
    """A browser with some real accumulated state."""
    clock = SimClock()
    browser = Browser(world, clock=clock, user_seed=0)
    for domain in world.tranco.domains[:count]:
        browser.visit(domain)
        clock.advance(2)
    return browser


def _checkpoint_for(browser: Browser, visits_done: int = 10) -> ShardCheckpoint:
    snapshot = browser.state_snapshot()
    return ShardCheckpoint(
        shard_index=1,
        visits_done=visits_done,
        targets=50,
        complete=False,
        clock_now=snapshot["clock_now"],
        browser_state=snapshot,
        state_digest=state_digest_of(snapshot),
        report=CrawlReport(targets=50, ok=visits_done, started_at=0),
        d_ba=(),
        d_aa=(),
    )


class TestBrowserStateSnapshot:
    def test_snapshot_restore_round_trip(self, tiny_world):
        original = _browser_after_visits(tiny_world, 25)
        snapshot = original.state_snapshot()

        clone = Browser(tiny_world, clock=SimClock(), user_seed=0)
        clone.restore_state(snapshot)

        assert clone.state_digest() == original.state_digest()
        assert clone.state_snapshot() == snapshot

    def test_restored_browser_continues_identically(self, tiny_world):
        targets = tiny_world.tranco.domains[:30]
        reference = _browser_after_visits(tiny_world, 20)
        resumed = Browser(tiny_world, clock=SimClock(), user_seed=0)
        resumed.restore_state(_browser_after_visits(tiny_world, 20).state_snapshot())

        for domain in targets[20:]:
            left = reference.visit(domain)
            right = resumed.visit(domain)
            assert left.topics_calls == right.topics_calls
            assert (left.ok, left.error) == (right.ok, right.error)
            reference.clock.advance(2)
            resumed.clock.advance(2)

        assert resumed.state_digest() == reference.state_digest()

    def test_snapshot_is_json_serialisable(self, tiny_world):
        snapshot = _browser_after_visits(tiny_world, 15).state_snapshot()
        round_tripped = json.loads(json.dumps(snapshot))
        assert state_digest_of(round_tripped) == state_digest_of(snapshot)

    def test_allowlist_mode_mismatch_rejected(self, tiny_world):
        corrupt = Browser(
            tiny_world, clock=SimClock(), user_seed=0, corrupt_allowlist=True
        )
        corrupt.visit(tiny_world.tranco.domains[0])
        healthy = Browser(
            tiny_world, clock=SimClock(), user_seed=0, corrupt_allowlist=False
        )
        with pytest.raises(ValueError, match="allow-list"):
            healthy.restore_state(corrupt.state_snapshot())


class TestShardCheckpointFormat:
    def test_lines_round_trip(self, tiny_world):
        checkpoint = _checkpoint_for(_browser_after_visits(tiny_world, 10))
        restored = ShardCheckpoint.from_lines(checkpoint.to_lines())
        assert restored == checkpoint

    def test_truncated_file_rejected(self, tiny_world):
        checkpoint = _checkpoint_for(_browser_after_visits(tiny_world, 10))
        with pytest.raises(CheckpointError, match="truncated"):
            ShardCheckpoint.from_lines(checkpoint.to_lines()[:2])

    def test_garbage_rejected(self):
        with pytest.raises(CheckpointError, match="malformed"):
            ShardCheckpoint.from_lines(["not json", "{}", "{}", "{}"])

    def test_newer_version_rejected(self, tiny_world):
        checkpoint = _checkpoint_for(_browser_after_visits(tiny_world, 10))
        lines = checkpoint.to_lines()
        header = json.loads(lines[0])
        header["checkpoint"]["version"] = CHECKPOINT_FORMAT_VERSION + 1
        lines[0] = json.dumps(header)
        with pytest.raises(CheckpointError, match="newer"):
            ShardCheckpoint.from_lines(lines)

    def test_tampered_state_rejected(self, tiny_world):
        checkpoint = _checkpoint_for(_browser_after_visits(tiny_world, 10))
        lines = checkpoint.to_lines()
        browser_line = json.loads(lines[2])
        browser_line["browser"]["rng_cursor"] += 1
        lines[2] = json.dumps(browser_line)
        with pytest.raises(CheckpointError, match="digest"):
            ShardCheckpoint.from_lines(lines)


class TestCheckpointStore:
    def test_write_then_latest(self, tiny_world, tmp_path):
        store = CheckpointStore(tmp_path)
        checkpoint = _checkpoint_for(_browser_after_visits(tiny_world, 10))
        path = store.write(checkpoint)
        assert path.exists()
        assert store.latest(1) == checkpoint
        assert store.latest(7) is None

    def test_no_temp_files_left_behind(self, tiny_world, tmp_path):
        store = CheckpointStore(tmp_path)
        store.write(_checkpoint_for(_browser_after_visits(tiny_world, 10)))
        leftovers = [p for p in tmp_path.rglob(".*tmp*")]
        assert leftovers == []

    def test_latest_prefers_newest(self, tiny_world, tmp_path):
        store = CheckpointStore(tmp_path)
        browser = _browser_after_visits(tiny_world, 10)
        store.write(_checkpoint_for(browser, visits_done=10))
        store.write(_checkpoint_for(browser, visits_done=20))
        assert store.latest(1).visits_done == 20

    def test_scan_fallback_without_manifest(self, tiny_world, tmp_path):
        store = CheckpointStore(tmp_path)
        store.write(_checkpoint_for(_browser_after_visits(tiny_world, 10)))
        # Simulate a crash that lost the manifest between the two writes.
        (tmp_path / MANIFEST_FILE).unlink()
        assert store.latest(1).visits_done == 10

    def test_corrupt_file_raises(self, tiny_world, tmp_path):
        store = CheckpointStore(tmp_path)
        path = store.write(_checkpoint_for(_browser_after_visits(tiny_world, 10)))
        path.write_text(path.read_text()[: len(path.read_text()) // 2])
        with pytest.raises(CheckpointError):
            store.latest(1)

    def test_fingerprint_binding(self, tmp_path):
        store = CheckpointStore(tmp_path)
        fingerprint = campaign_fingerprint(["a.com", "b.com"], 2, True)
        store.initialize(fingerprint)
        store.initialize(fingerprint)  # idempotent for the same campaign
        with pytest.raises(CheckpointError, match="different campaign"):
            store.initialize(campaign_fingerprint(["a.com", "c.com"], 2, True))
        with pytest.raises(CheckpointError, match="different campaign"):
            store.initialize(campaign_fingerprint(["a.com", "b.com"], 4, True))

    def test_shards_listing(self, tiny_world, tmp_path):
        store = CheckpointStore(tmp_path)
        store.write(_checkpoint_for(_browser_after_visits(tiny_world, 10)))
        assert store.shards() == [1]

    def test_restore_datasets_names(self, tiny_world):
        checkpoint = _checkpoint_for(_browser_after_visits(tiny_world, 10))
        d_ba, d_aa = restore_datasets(checkpoint)
        assert (d_ba.name, d_aa.name) == ("D_BA", "D_AA")


class TestRetryPolicy:
    def test_exponential_with_cap(self):
        policy = RetryPolicy(base_backoff_seconds=30, backoff_cap_seconds=600)
        assert [policy.backoff_seconds(n) for n in (1, 2, 3, 4, 5, 6)] == [
            30,
            60,
            120,
            240,
            480,
            600,
        ]

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_retries=-1)
        with pytest.raises(ValueError):
            RetryPolicy(base_backoff_seconds=0)
        with pytest.raises(ValueError):
            RetryPolicy().backoff_seconds(0)


class TestPartialManifest:
    def test_round_trip(self, tmp_path):
        manifest = PartialManifest(
            missing=[
                MissingRange(2, 501, 750, "RuntimeError('boom')"),
                MissingRange(0, 51, 250, "RuntimeError('boom')"),
            ]
        )
        assert manifest.missing_targets == 250 + 200
        path = manifest.save(tmp_path / "partial.json")
        loaded = PartialManifest.load(path)
        assert sorted(loaded.missing, key=lambda m: m.from_rank) == sorted(
            manifest.missing, key=lambda m: m.from_rank
        )

    def test_range_count_inclusive(self):
        assert MissingRange(0, 10, 10, "x").count == 1
        assert MissingRange(0, 1, 100, "x").count == 100
