"""Unit tests for the third-party catalogue and Topics adoption policies."""

import pytest

from repro.browser.topics.types import ApiCallType
from repro.web.thirdparty import (
    DISTILLERY_DOMAIN,
    GTM_DOMAIN,
    ThirdParty,
    ThirdPartyCategory,
    TopicsPolicy,
    active_caller_domains,
    named_third_parties,
    questionable_caller_domains,
    stable_fraction,
)
from repro.web.tlds import Region


class TestCatalogueShape:
    def test_exactly_47_active_callers(self):
        # Paper §2.4: "we encounter only 47 CPs that call the Topics API".
        assert len(active_caller_domains()) == 47

    def test_exactly_28_questionable_callers(self):
        # Paper §5: "28 of them call the Topics API in the Before-Accept".
        assert len(questionable_caller_domains()) == 28

    def test_questionable_subset_of_active(self):
        assert set(questionable_caller_domains()) <= set(active_caller_domains())

    def test_figure2_parties_present(self):
        domains = {tp.domain for tp in named_third_parties()}
        for expected in (
            "google-analytics.com", "doubleclick.net", "bing.com",
            "rubiconproject.com", "pubmatic.com", "criteo.com",
            "casalemedia.com", "3lift.com", "openx.net", "teads.tv",
            "taboola.com", "adform.net", "indexww.com", "quantserve.com",
            "yahoo.com",
        ):
            assert expected in domains, expected

    def test_google_analytics_enrolled_but_silent(self):
        # §3: "google-analytics.com is curiously both Attested and Allowed.
        # Yet, it never calls the Topics API."
        ga = next(t for t in named_third_parties() if t.domain == "google-analytics.com")
        assert ga.enrolled and ga.attested
        assert ga.policy is None

    def test_bing_enrolled_but_silent(self):
        bing = next(t for t in named_third_parties() if t.domain == "bing.com")
        assert bing.enrolled and bing.attested and bing.policy is None

    def test_doubleclick_compliant_before_consent(self):
        # §5: "doubleclick.net, the top-1 caller, does not perform any call
        # in Before-Accept".
        dbl = next(t for t in named_third_parties() if t.domain == "doubleclick.net")
        assert dbl.policy is not None
        assert not dbl.policy.calls_before_consent

    def test_gtm_not_enrolled(self):
        gtm = next(t for t in named_third_parties() if t.domain == GTM_DOMAIN)
        assert not gtm.enrolled and not gtm.attested
        assert gtm.category is ThirdPartyCategory.TAG_MANAGER
        assert not gtm.consent_gated

    def test_yandex_regional_prevalence(self):
        yandex = next(t for t in named_third_parties() if t.domain == "yandex.com")
        assert yandex.prevalence_in(Region.RU) > 10 * yandex.prevalence_in(Region.COM)
        assert yandex.prevalence_in(Region.JP) == 0.0

    def test_figure3_rate_ordering(self):
        rates = {
            tp.domain: tp.policy.enabled_rate
            for tp in named_third_parties()
            if tp.policy is not None
        }
        # The clusters the paper highlights.
        assert rates["authorizedvault.com"] > 0.9
        assert rates["criteo.com"] == pytest.approx(0.75)
        assert rates["cpx.to"] == pytest.approx(0.75)
        assert rates["yandex.com"] == pytest.approx(0.66)
        assert rates["doubleclick.net"] == pytest.approx(0.33)


class TestTopicsPolicy:
    def test_rate_validation(self):
        with pytest.raises(ValueError):
            TopicsPolicy(enabled_rate=1.5)
        with pytest.raises(ValueError):
            TopicsPolicy(enabled_rate=0.5, before_rate=-0.1)
        with pytest.raises(ValueError):
            TopicsPolicy(enabled_rate=0.5, alternating_period=0)

    def test_ab_decision_stable_per_site(self):
        policy = TopicsPolicy(enabled_rate=0.5)
        for site in ("a.com", "b.com", "c.com"):
            first = policy.is_enabled("cp.com", site, 100)
            assert all(
                policy.is_enabled("cp.com", site, now) == first
                for now in (0, 10_000, 10**7)
            )

    def test_ab_rate_approximation(self):
        policy = TopicsPolicy(enabled_rate=0.75)
        hits = sum(
            policy.is_enabled("cp.com", f"site{i}.com", 0) for i in range(4000)
        )
        assert 0.72 < hits / 4000 < 0.78

    def test_alternating_policy_changes_over_windows(self):
        policy = TopicsPolicy(enabled_rate=0.5, alternating_period=3600)
        site = "site.com"
        decisions = {
            policy.is_enabled("cp.com", site, window * 3600)
            for window in range(50)
        }
        assert decisions == {True, False}

    def test_alternating_policy_stable_within_window(self):
        policy = TopicsPolicy(enabled_rate=0.5, alternating_period=3600)
        assert policy.is_enabled("cp.com", "s.com", 0) == policy.is_enabled(
            "cp.com", "s.com", 3599
        )

    def test_before_accept_requires_positive_rate(self):
        policy = TopicsPolicy(enabled_rate=0.5, before_rate=0.0)
        assert not policy.calls_before_consent
        assert not policy.calls_in_before_accept("cp.com", "site.com")

    def test_environment_multiplier_scales(self):
        policy = TopicsPolicy(enabled_rate=0.5, before_rate=0.2)
        sites = [f"s{i}.com" for i in range(4000)]
        low = sum(policy.calls_in_before_accept("cp.com", s, 0.5) for s in sites)
        high = sum(policy.calls_in_before_accept("cp.com", s, 2.0) for s in sites)
        assert 0.08 < low / 4000 < 0.12
        assert 0.36 < high / 4000 < 0.44

    def test_ignores_environment_flag(self):
        policy = TopicsPolicy(
            enabled_rate=0.5, before_rate=0.2, ignores_consent_environment=True
        )
        sites = [f"s{i}.com" for i in range(2000)]
        low = [policy.calls_in_before_accept("cp.com", s, 0.1) for s in sites]
        high = [policy.calls_in_before_accept("cp.com", s, 5.0) for s in sites]
        assert low == high

    def test_multiplier_caps_at_one(self):
        policy = TopicsPolicy(enabled_rate=0.5, before_rate=0.9)
        assert all(
            policy.calls_in_before_accept("cp.com", f"s{i}.com", 100.0)
            for i in range(100)
        )

    def test_call_type_deterministic(self):
        policy = TopicsPolicy(enabled_rate=1.0)
        assert policy.pick_call_type("cp.com", "s.com") is policy.pick_call_type(
            "cp.com", "s.com"
        )

    def test_call_type_respects_weights(self):
        policy = TopicsPolicy(
            enabled_rate=1.0, call_type_weights={ApiCallType.FETCH: 1.0}
        )
        assert all(
            policy.pick_call_type("cp.com", f"s{i}.com") is ApiCallType.FETCH
            for i in range(50)
        )

    def test_calls_on_page_bounds(self):
        policy = TopicsPolicy(enabled_rate=1.0, max_calls_per_page=2)
        counts = {policy.calls_on_page("cp.com", f"s{i}.com") for i in range(200)}
        assert counts == {1, 2}

    def test_single_call_policy(self):
        policy = TopicsPolicy(enabled_rate=1.0, max_calls_per_page=1)
        assert all(
            policy.calls_on_page("cp.com", f"s{i}.com") == 1 for i in range(50)
        )


class TestThirdParty:
    def test_preconsent_load_deterministic(self):
        tp = ThirdParty(
            domain="ads.example",
            category=ThirdPartyCategory.ADS,
            prevalence={},
            consent_gated=True,
            preconsent_load_rate=0.3,
        )
        assert tp.loads_preconsent_on("x.com") == tp.loads_preconsent_on("x.com")

    def test_preconsent_load_rate_approximation(self):
        tp = ThirdParty(
            domain="ads.example",
            category=ThirdPartyCategory.ADS,
            prevalence={},
            consent_gated=True,
            preconsent_load_rate=0.3,
        )
        hits = sum(tp.loads_preconsent_on(f"s{i}.com") for i in range(4000))
        assert 0.27 < hits / 4000 < 0.33

    def test_ungated_always_loads(self):
        tp = ThirdParty(
            domain="cdn.example",
            category=ThirdPartyCategory.CDN,
            prevalence={},
            consent_gated=False,
            preconsent_load_rate=0.0,
        )
        assert tp.loads_preconsent_on("any.com")

    def test_stable_fraction_range(self):
        values = [stable_fraction("a", str(i)) for i in range(1000)]
        assert all(0.0 <= v < 1.0 for v in values)
        assert 0.45 < sum(values) / len(values) < 0.55

    def test_distillery_constant(self):
        assert DISTILLERY_DOMAIN == "distillery.com"
