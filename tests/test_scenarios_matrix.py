"""Matrix expansion properties: order independence, collision freedom."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.scenarios.matrix import (
    baseline_cell,
    cell_id_of,
    expand,
    render_cell_table,
)
from repro.scenarios.spec import ScenarioSpec, ScenarioSpecError

#: Distinct WorldConfig fields the generated axes may override — one per
#: axis, so generated specs never trip the cross-axis conflict check.
_AXIS_FIELDS = (
    "rogue_before_rate",
    "questionable_multiplier_no_banner",
    "questionable_multiplier_leaky_cmp",
)


@st.composite
def spec_dicts(draw):
    """A small random spec: 1-3 axes, 1-3 values each, numeric params."""
    axis_count = draw(st.integers(min_value=1, max_value=3))
    axes = []
    for index in range(axis_count):
        value_count = draw(st.integers(min_value=1, max_value=3))
        values = [
            {
                "name": f"v{value_index}",
                "world": {
                    _AXIS_FIELDS[index]: draw(
                        st.floats(
                            min_value=0.0,
                            max_value=1.0,
                            allow_nan=False,
                            width=32,
                        )
                    )
                },
            }
            for value_index in range(value_count)
        ]
        axes.append({"name": f"axis{index}", "values": values})
    return {
        "name": "prop",
        "world": {"sites": 500, "seed": 1},
        "axes": axes,
    }


@given(raw=spec_dicts(), seed=st.randoms(use_true_random=False))
@settings(max_examples=40, deadline=None)
def test_expansion_is_order_independent(raw, seed):
    """Shuffling axes and values changes neither cell ids nor prints."""
    reference = expand(ScenarioSpec.from_dict(raw))

    shuffled = dict(raw)
    shuffled["axes"] = [dict(axis) for axis in raw["axes"]]
    seed.shuffle(shuffled["axes"])
    for axis in shuffled["axes"]:
        axis["values"] = list(axis["values"])
        seed.shuffle(axis["values"])
    permuted = expand(ScenarioSpec.from_dict(shuffled))

    assert [cell.cell_id for cell in permuted] == [
        cell.cell_id for cell in reference
    ]
    assert [cell.fingerprint for cell in permuted] == [
        cell.fingerprint for cell in reference
    ]
    assert [cell.config for cell in permuted] == [
        cell.config for cell in reference
    ]


@given(raw=spec_dicts())
@settings(max_examples=40, deadline=None)
def test_distinct_cells_have_distinct_fingerprints(raw):
    cells = expand(ScenarioSpec.from_dict(raw))
    ids = [cell.cell_id for cell in cells]
    fingerprints = [cell.fingerprint for cell in cells]
    assert len(set(ids)) == len(ids)
    assert len(set(fingerprints)) == len(fingerprints)
    expected = 1
    for axis in raw["axes"]:
        expected *= len(axis["values"])
    assert len(cells) == expected


def test_identical_param_bundles_still_collision_free():
    """Two values with byte-identical params get distinct fingerprints."""
    spec = ScenarioSpec.from_dict(
        {
            "name": "same-params",
            "world": {"sites": 500},
            "axes": [
                {
                    "name": "copy",
                    "values": [{"name": "a"}, {"name": "b"}],
                }
            ],
        }
    )
    first, second = expand(spec)
    assert first.config == second.config
    assert first.fingerprint != second.fingerprint


def two_axis_spec(**extra) -> ScenarioSpec:
    raw = {
        "name": "two",
        "world": {"sites": 500},
        "axes": [
            {
                "name": "vantage",
                "values": [
                    {"name": "eu", "vantage": "eu"},
                    {"name": "us", "vantage": "us"},
                ],
            },
            {
                "name": "allowlist",
                "values": [
                    {"name": "corrupted", "allowlist": "corrupted"},
                    {"name": "healthy", "allowlist": "healthy"},
                ],
            },
        ],
        "baseline": {"vantage": "eu", "allowlist": "corrupted"},
    }
    raw.update(extra)
    return ScenarioSpec.from_dict(raw)


class TestConstraints:
    def test_exclude_drops_matching_cells(self):
        spec = two_axis_spec(
            exclude=[{"vantage": "us", "allowlist": "healthy"}]
        )
        ids = [cell.cell_id for cell in expand(spec)]
        assert "allowlist=healthy,vantage=us" not in ids
        assert len(ids) == 3

    def test_include_keeps_only_matching_cells(self):
        spec = two_axis_spec(include=[{"vantage": "eu"}])
        ids = [cell.cell_id for cell in expand(spec)]
        assert ids == [
            "allowlist=corrupted,vantage=eu",
            "allowlist=healthy,vantage=eu",
        ]

    def test_empty_matrix_is_an_error(self):
        spec = two_axis_spec(
            include=[{"vantage": "eu"}], exclude=[{"vantage": "eu"}]
        )
        with pytest.raises(ScenarioSpecError, match="no cells"):
            expand(spec)

    def test_cross_axis_conflict_is_an_error(self):
        spec = ScenarioSpec.from_dict(
            {
                "name": "conflict",
                "world": {"sites": 500},
                "axes": [
                    {
                        "name": "a",
                        "values": [{"name": "x", "vantage": "eu"}],
                    },
                    {
                        "name": "b",
                        "values": [{"name": "y", "vantage": "us"}],
                    },
                ],
            }
        )
        with pytest.raises(ScenarioSpecError, match="both set"):
            expand(spec)


class TestBaseline:
    def test_declared_baseline_resolves(self):
        spec = two_axis_spec()
        cells = expand(spec)
        assert (
            baseline_cell(spec, cells).cell_id
            == "allowlist=corrupted,vantage=eu"
        )

    def test_single_valued_axes_default_implicitly(self):
        spec = ScenarioSpec.from_dict(
            {
                "name": "implicit",
                "world": {"sites": 500},
                "axes": [
                    {
                        "name": "vantage",
                        "values": [{"name": "eu", "vantage": "eu"}],
                    }
                ],
            }
        )
        cells = expand(spec)
        assert baseline_cell(spec, cells).cell_id == "vantage=eu"

    def test_unpinned_multi_valued_axis_is_an_error(self):
        spec = two_axis_spec(baseline={"vantage": "eu"})
        with pytest.raises(ScenarioSpecError, match="must pin"):
            baseline_cell(spec, expand(spec))

    def test_filtered_out_baseline_is_an_error(self):
        spec = two_axis_spec(exclude=[{"vantage": "eu"}])
        with pytest.raises(ScenarioSpecError, match="not in the"):
            baseline_cell(spec, expand(spec))


def test_cell_id_is_canonical():
    assert (
        cell_id_of((("vantage", "eu"), ("allowlist", "healthy")))
        == "allowlist=healthy,vantage=eu"
    )


def test_render_cell_table_lists_every_cell():
    spec = two_axis_spec()
    cells = expand(spec)
    table = render_cell_table(cells, baseline_id=cells[0].cell_id)
    for cell in cells:
        assert cell.cell_id in table
        assert cell.fingerprint in table
    assert "*baseline" in table
