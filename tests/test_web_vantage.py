"""Tests for vantage-point modelling (§6's single-location limitation)."""

import dataclasses

import pytest

from repro.crawler.campaign import CrawlCampaign
from repro.web.config import WorldConfig
from repro.web.generator import WebGenerator
from repro.web.tlds import Region
from repro.web.vantage import (
    EU_VANTAGE,
    OTHER_VANTAGE,
    US_VANTAGE,
    vantage_by_name,
)


class TestVantagePoints:
    def test_lookup(self):
        assert vantage_by_name("eu") is EU_VANTAGE
        assert vantage_by_name("us") is US_VANTAGE
        with pytest.raises(KeyError):
            vantage_by_name("mars")

    def test_eu_is_identity(self):
        base = {region: 0.5 for region in Region}
        assert EU_VANTAGE.scaled_banner_probability(base) == base

    def test_us_reduces_banners(self):
        base = {region: 0.5 for region in Region}
        scaled = US_VANTAGE.scaled_banner_probability(base)
        assert scaled[Region.COM] < base[Region.COM]
        assert scaled[Region.EU] <= base[Region.EU]

    def test_scaling_caps_at_one(self):
        boosted = dataclasses.replace(
            US_VANTAGE, banner_multiplier={Region.COM: 5.0}
        )
        scaled = boosted.scaled_banner_probability({Region.COM: 0.9})
        assert scaled[Region.COM] == 1.0

    def test_gdpr_flags(self):
        assert EU_VANTAGE.gdpr_protected
        assert not US_VANTAGE.gdpr_protected
        assert not OTHER_VANTAGE.gdpr_protected


class TestVantageCrawls:
    @pytest.fixture(scope="class")
    def us_crawl(self):
        config = WorldConfig.small(3_000)
        config.vantage = US_VANTAGE
        world = WebGenerator(config).generate()
        return CrawlCampaign(world, corrupt_allowlist=True).run()

    def test_config_effective_probabilities(self):
        config = WorldConfig.small(1_000)
        config.vantage = US_VANTAGE
        effective = config.effective_banner_probability()
        assert effective[Region.COM] < config.banner_probability[Region.COM]

    def test_us_vantage_fewer_banners(self, us_crawl, crawl):
        # Compare banner rates, which scale-independently reflect vantage.
        us_rate = us_crawl.report.banners_seen / us_crawl.report.ok
        eu_rate = crawl.report.banners_seen / crawl.report.ok
        assert us_rate < 0.85 * eu_rate

    def test_us_vantage_smaller_daa(self, us_crawl, crawl):
        us_accept = us_crawl.report.accept_rate
        eu_accept = crawl.report.accept_rate
        assert us_accept < 0.85 * eu_accept

    def test_us_vantage_more_preconsent_exposure(self, us_crawl):
        # Fewer banners ⇒ more sites load ad tags pre-consent, so the
        # Before-Accept object logs contain more gated-category parties.
        ad_presence = sum(
            1
            for record in us_crawl.d_ba
            if "criteo.com" in record.third_parties
        )
        assert ad_presence > 0
