"""Tests for the enrolment timeline analysis and the text report module."""

import datetime

from repro.analysis import report as report_module
from repro.analysis.enrollment import enrollment_timeline, migration_adoption
from repro.crawler.wellknown import AttestationProbe, AttestationSurvey


def survey_of(*probes: AttestationProbe) -> AttestationSurvey:
    return AttestationSurvey(probes)


class TestEnrollmentTimeline:
    def test_study_first_date_matches_paper(self, study):
        # §3: "Enrolments kicked off in June 2023, the first attestation
        # being on the 16th."
        assert study.enrollment.first_date == datetime.date(2023, 6, 16)

    def test_study_pace_low(self, study):
        # "each month, approximately a dozen new services obtain the
        # attestation" — ours runs at ~16/month to reach 193 by May 2024.
        assert 10 <= study.enrollment.mean_per_month <= 22

    def test_study_total_counts_attested(self, study, small_config):
        # 181 attested-and-allowed plus distillery.com.
        expected = small_config.allowed_total - small_config.unattested_allowed + 1
        assert study.enrollment.total == expected

    def test_distillery_month(self, study):
        assert study.enrollment.count_in(2023, 11) >= 1

    def test_empty_survey(self):
        timeline = enrollment_timeline(survey_of())
        assert timeline.total == 0
        assert timeline.first_date is None
        assert timeline.mean_per_month == 0.0

    def test_malformed_dates_skipped(self):
        timeline = enrollment_timeline(
            survey_of(
                AttestationProbe("a.com", True, True, issued="2023-06-16"),
                AttestationProbe("b.com", True, True, issued="not-a-date"),
            )
        )
        assert timeline.total == 1

    def test_monthly_buckets(self):
        timeline = enrollment_timeline(
            survey_of(
                AttestationProbe("a.com", True, True, issued="2023-06-16"),
                AttestationProbe("b.com", True, True, issued="2023-06-20"),
                AttestationProbe("c.com", True, True, issued="2023-08-01"),
            )
        )
        assert timeline.count_in(2023, 6) == 2
        assert timeline.count_in(2023, 7) == 0
        assert timeline.count_in(2023, 8) == 1
        assert timeline.mean_per_month == 1.0  # 3 over 3 months

    def test_migration_adoption_pre_migration(self, study):
        # The crawl ends well before 2024-10-17, so no file carries the
        # new field yet.
        assert migration_adoption(study.crawl.survey) == 0.0

    def test_migration_adoption_post_migration(self, world):
        from repro.attestation.registry import MIGRATION_AT
        from repro.crawler.wellknown import survey_attestations

        attested = sorted(world.registry.attested_domains())[:20]
        late_survey = survey_attestations(world, attested, MIGRATION_AT + 1)
        assert migration_adoption(late_survey) == 1.0


class TestReportRendering:
    def test_table1(self, study):
        text = report_module.render_table1(study.table1)
        assert "Allowed" in text and "D_AA" in text and "D_BA" in text
        assert "distillery.com" in text

    def test_figure2(self, study):
        text = report_module.render_figure2(study.fig2)
        assert "google-analytics.com" in text
        assert "present" in text

    def test_figure3(self, study):
        text = report_module.render_figure3(study.fig3)
        assert "%" in text and "enabled" in text

    def test_figure5(self, study):
        text = report_module.render_figure5(study.fig5)
        assert "questionable" in text

    def test_figure6(self, study):
        text = report_module.render_figure6(study.fig6)
        for region in ("com", "jp", "ru", "EU", "Other"):
            assert region in text

    def test_figure7(self, study):
        text = report_module.render_figure7(study.fig7)
        assert "HubSpot" in text and "lift" in text and "(average)" in text

    def test_anomalous(self, study):
        text = report_module.render_anomalous(study.anomalous)
        assert "JavaScript" in text and "GTM" in text
        assert "same-second-level-domain" in text

    def test_enrollment(self, study):
        text = report_module.render_enrollment(study.enrollment)
        assert "2023-06-16" in text
        assert "mean per month" in text
