"""Sequential vs. sharded equivalence: the observability cross-check.

The paper's analyses must not depend on how the campaign was executed.
This module pins that end to end — identical attestation surveys, honest
merged timing, and metric snapshots that agree counter-for-counter — and
pins the two historical merge bugs at the unit level:

* the merged survey used to be built from ``D_BA`` only, silently
  dropping third parties first encountered After-Accept;
* the merged report used to store a *duration* in ``finished_at``.
"""

import pytest

from repro.analysis.obs_report import diff_snapshots
from repro.crawler.campaign import (
    CrawlCampaign,
    CrawlReport,
    CrawlResult,
    attestation_targets,
)
from repro.crawler.dataset import Dataset, PHASE_AFTER, PHASE_BEFORE, VisitRecord
from repro.crawler.parallel import ShardPlan, ShardedCrawl, _ShardOutcome
from repro.crawler.wellknown import AttestationSurvey
from repro.obs import (
    MetricsRegistry,
    NULL_METRICS,
    NULL_TRACER,
    SpanRecorder,
    Tracer,
)
from repro.obs.profile import straggler_report
from repro.obs.spans import SPAN_CAMPAIGN, SPAN_SHARD
from repro.web.config import WorldConfig
from repro.web.generator import WebGenerator

EQUIVALENCE_SITES = 1_500


@pytest.fixture(scope="module")
def eq_world():
    # A private world (different seed than the session fixtures) keeps
    # this module's pins independent of the shared campaign state.
    return WebGenerator(WorldConfig.small(EQUIVALENCE_SITES, seed=3)).generate()


@pytest.fixture(scope="module")
def sequential(eq_world):
    tracer, metrics, spans = Tracer(), MetricsRegistry(), SpanRecorder()
    result = CrawlCampaign(
        eq_world, corrupt_allowlist=True, tracer=tracer, metrics=metrics,
        spans=spans,
    ).run()
    return result, tracer, metrics, spans


@pytest.fixture(scope="module")
def sharded(eq_world):
    tracer, metrics, spans = Tracer(), MetricsRegistry(), SpanRecorder()
    result = ShardedCrawl(
        eq_world, shard_count=4, tracer=tracer, metrics=metrics, spans=spans
    ).run()
    return result, tracer, metrics, spans


@pytest.fixture(scope="module")
def plain_sequential(eq_world):
    """The same campaign with every recorder left at its no-op default."""
    return CrawlCampaign(eq_world, corrupt_allowlist=True).run()


class TestSurveyEquivalence:
    def test_identical_attestation_surveys(self, sequential, sharded):
        seq_result = sequential[0]
        sh_result = sharded[0]
        seq_domains = {d for d in map(lambda p: p.domain, seq_result.survey._by_domain.values())}
        sh_domains = {d for d in map(lambda p: p.domain, sh_result.survey._by_domain.values())}
        assert seq_domains == sh_domains
        for domain in seq_domains:
            assert seq_result.survey.probe(domain) == sh_result.survey.probe(domain)

    def test_identical_datasets(self, sequential, sharded):
        seq_result = sequential[0]
        sh_result = sharded[0]
        assert {r.domain for r in seq_result.d_ba} == {
            r.domain for r in sh_result.d_ba
        }
        assert {r.domain for r in seq_result.d_aa} == {
            r.domain for r in sh_result.d_aa
        }


class TestReportEquivalence:
    def test_protocol_counters_match(self, sequential, sharded):
        seq, sh = sequential[0].report, sharded[0].report
        assert (seq.targets, seq.ok, seq.failed) == (sh.targets, sh.ok, sh.failed)
        assert (seq.banners_seen, seq.accepted) == (sh.banners_seen, sh.accepted)
        assert seq.failure_kinds == sh.failure_kinds
        assert (seq.retried, seq.recovered) == (sh.retried, sh.recovered)

    def test_timing_fields_consistent(self, sequential, sharded):
        seq, sh = sequential[0].report, sharded[0].report
        for report in (seq, sh):
            assert report.started_at == 0
            assert report.finished_at > report.started_at
            assert report.duration_seconds == report.finished_at - report.started_at
        # The parallel campaign finishes with its slowest shard — well
        # before a sequential walk of the same ranking.
        assert sh.duration_seconds < seq.duration_seconds


class TestMetricsCrossCheck:
    def test_snapshots_agree_on_every_counter(self, sequential, sharded):
        """The cross-check that would have caught both merge bugs."""
        divergences = diff_snapshots(
            sequential[2].snapshot(),
            sharded[2].snapshot(),
            ignore_prefixes=("shard_",),
        )
        assert divergences == []

    def test_trace_kinds_differ_only_by_shard_lifecycle(self, sequential, sharded):
        seq_kinds = sequential[1].counts_by_kind()
        sh_kinds = sharded[1].counts_by_kind()
        shard_events = {
            kind: sh_kinds.pop(kind)
            for kind in ("shard-started", "shard-merged")
        }
        assert sh_kinds == seq_kinds
        assert shard_events == {"shard-started": 4, "shard-merged": 4}


class TestMergedTraceOrdering:
    """Satellite pin: the merged trace interleaves shards in replay order.

    ``ShardedCrawl._merge`` used to replay shard 0's entire history, then
    shard 1's, and so on; the fold now sorts by ``(at, shard_index,
    seq)``, so the campaign-level trace reads chronologically.
    """

    def test_merged_events_sorted_by_at_then_shard(self, sharded):
        tracer = sharded[1]
        lifecycle = {"shard-merged"}
        keys = [
            (event.at, event.fields["shard"])
            for event in tracer
            if event.kind not in lifecycle and "shard" in event.fields
        ]
        assert keys, "expected shard-tagged events in the merged trace"
        assert keys == sorted(keys)

    def test_merge_folds_handcrafted_traces_in_time_order(self, eq_world):
        tracer = Tracer()
        sharded = ShardedCrawl(eq_world, shard_count=2, tracer=tracer)
        outcomes = []
        for shard, times in enumerate(((5, 20), (1, 12))):
            shard_tracer = Tracer()
            for at in times:
                shard_tracer.emit("probe", at=at)
            report = CrawlReport(started_at=0, finished_at=max(times))
            outcomes.append(
                _ShardOutcome(
                    result=CrawlResult(
                        d_ba=Dataset("D_BA"),
                        d_aa=Dataset("D_AA"),
                        report=report,
                        allowed_domains=frozenset(),
                        survey=AttestationSurvey(()),
                    ),
                    tracer=shard_tracer,
                    metrics=MetricsRegistry(),
                )
            )
        plans = [
            ShardPlan(shard_index=0, domains=("a.com",), rank_offset=0),
            ShardPlan(shard_index=1, domains=("b.com",), rank_offset=1),
        ]
        sharded._merge(plans, outcomes)
        probes = [
            (event.at, event.fields["shard"])
            for event in tracer.events("probe")
        ]
        # Time-sorted fold, not shard 0 then shard 1.
        assert probes == [(1, 1), (5, 0), (12, 1), (20, 0)]


class TestSpanEquivalence:
    """The span layer observes the campaign without perturbing it."""

    def test_instrumentation_transparency_relation(self, tmp_path):
        """Recording on must leave results byte-identical to the seed
        behaviour (spans never touch the clock or any RNG).  The relation
        is owned by the metamorphic harness; this drives it directly."""
        from repro.validate import MetamorphicHarness

        harness = MetamorphicHarness(tmp_path, sites=300, seed=3)
        result = harness.check_instrumentation_transparency()
        assert result.passed, "\n".join(result.details)

    def test_canary_byte_pin_with_and_without_spans(
        self, sequential, plain_sequential, tmp_path
    ):
        """One legacy byte pin kept as a canary for the harness itself:
        if this fires while the relation above stays green, the harness
        comparator has gone blind."""
        instrumented = sequential[0]
        plain = plain_sequential
        left_path = tmp_path / "d_ba_spans.jsonl"
        right_path = tmp_path / "d_ba_plain.jsonl"
        instrumented.d_ba.to_jsonl(left_path)
        plain.d_ba.to_jsonl(right_path)
        assert left_path.read_bytes() == right_path.read_bytes()
        assert instrumented.report == plain.report
        assert instrumented.survey._by_domain == plain.survey._by_domain

    def test_sequential_tree_shape(self, sequential):
        result, spans = sequential[0], sequential[3]
        assert spans.open_depth == 0
        roots = [s for s in spans.spans() if s.parent_id is None]
        assert [r.name for r in roots] == [SPAN_CAMPAIGN]
        assert roots[0].start == float(result.report.started_at)
        assert roots[0].end == float(result.report.finished_at)
        visits = spans.spans("visit")
        assert len(visits) == result.report.ok + result.report.failed + result.report.accepted

    def test_straggler_finish_is_merged_finished_at(self, sharded):
        """Acceptance pin: the profiler names the shard whose finish time
        equals the merged report's ``finished_at``."""
        result, spans = sharded[0], sharded[3]
        report = straggler_report(spans.spans())
        assert report is not None
        assert len(report.shards) == 4
        assert report.straggler.finished_at == float(result.report.finished_at)
        assert report.straggler.finished_at == max(
            timing.finished_at for timing in report.shards
        )

    def test_merged_tree_grafts_shards_under_one_root(self, sharded):
        spans = sharded[3]
        assert spans.open_depth == 0
        roots = [s for s in spans.spans() if s.parent_id is None]
        assert [r.name for r in roots] == [SPAN_CAMPAIGN]
        shard_spans = spans.spans(SPAN_SHARD)
        assert len(shard_spans) == 4
        assert {s.parent_id for s in shard_spans} == {roots[0].span_id}
        assert sorted(s.fields["shard"] for s in shard_spans) == [0, 1, 2, 3]

    def test_merged_spans_fold_in_chronological_order(self, sharded):
        spans = sharded[3]
        shard_tagged = [
            (s.start, s.fields["shard"])
            for s in spans.spans()
            if "shard" in s.fields
        ]
        assert shard_tagged == sorted(shard_tagged)


def _record(domain: str, phase: str, third_parties: tuple[str, ...]) -> VisitRecord:
    return VisitRecord(
        rank=1,
        domain=domain,
        final_domain=domain,
        url=f"https://www.{domain}/",
        final_url=f"https://www.{domain}/",
        phase=phase,
        banner_present=True,
        banner_language="english",
        accept_clicked=phase == PHASE_AFTER,
        cmp=None,
        third_parties=third_parties,
        calls=(),
    )


class TestAttestationTargets:
    """Unit pin of the shared encountered-set helper (bug #1)."""

    def test_after_accept_only_parties_are_included(self):
        d_ba = Dataset("D_BA", [_record("site.com", PHASE_BEFORE, ("cdn.com",))])
        d_aa = Dataset(
            "D_AA", [_record("site.com", PHASE_AFTER, ("cdn.com", "gated-ads.com"))]
        )
        targets = attestation_targets(d_ba, d_aa, frozenset({"allowed.com"}))
        assert "gated-ads.com" in targets  # the party the old merge dropped
        assert targets == {
            "site.com",
            "cdn.com",
            "gated-ads.com",
            "allowed.com",
        }


class TestMergeRegression:
    """Merge-level pins with handcrafted shard outcomes."""

    @staticmethod
    def _shard_outcome(
        d_ba: Dataset, d_aa: Dataset, started_at: int, finished_at: int
    ) -> _ShardOutcome:
        report = CrawlReport(
            targets=len(d_ba),
            ok=len(d_ba),
            started_at=started_at,
            finished_at=finished_at,
        )
        result = CrawlResult(
            d_ba=d_ba,
            d_aa=d_aa,
            report=report,
            allowed_domains=frozenset(),
            survey=AttestationSurvey(()),
        )
        return _ShardOutcome(result=result, tracer=NULL_TRACER, metrics=NULL_METRICS)

    def test_merge_surveys_after_accept_only_parties(self, world):
        # "aa-only.example" is loaded exclusively behind the consent gate:
        # the pre-fix merge built the survey from D_BA alone and missed it.
        sharded = ShardedCrawl(world, shard_count=1)
        outcome = self._shard_outcome(
            Dataset("D_BA", [_record("site.com", PHASE_BEFORE, ("cdn.example",))]),
            Dataset("D_AA", [_record("site.com", PHASE_AFTER, ("aa-only.example",))]),
            started_at=0,
            finished_at=10,
        )
        merged = sharded._merge(
            [ShardPlan(shard_index=0, domains=("site.com",), rank_offset=0)],
            [outcome],
        )
        assert "aa-only.example" in merged.survey
        assert "cdn.example" in merged.survey

    def test_merge_keeps_honest_timestamps(self, world):
        # Pre-fix, finished_at was assigned max(shard durations): a shard
        # spanning [5, 65] produced finished_at=60 — a duration, not a
        # timestamp.  The merged report must span min(start)..max(finish).
        sharded = ShardedCrawl(world, shard_count=2)
        outcomes = [
            self._shard_outcome(Dataset("D_BA"), Dataset("D_AA"), 5, 65),
            self._shard_outcome(Dataset("D_BA"), Dataset("D_AA"), 2, 40),
        ]
        plans = [
            ShardPlan(shard_index=0, domains=("a.com",), rank_offset=0),
            ShardPlan(shard_index=1, domains=("b.com",), rank_offset=1),
        ]
        merged = sharded._merge(plans, outcomes)
        assert merged.report.started_at == 2
        assert merged.report.finished_at == 65
        assert merged.report.duration_seconds == 63
