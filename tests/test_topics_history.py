"""Unit tests for per-epoch browsing history and observed-by bookkeeping."""

from repro.browser.topics.history import BrowsingHistory
from repro.util.timeline import EPOCH_DURATION


class TestRecording:
    def test_visit_counts_per_epoch(self):
        history = BrowsingHistory()
        history.record_page_visit("news.com", at=0)
        history.record_page_visit("news.com", at=10)
        history.record_page_visit("news.com", at=EPOCH_DURATION + 1)
        assert history.visit_count(0, "news.com") == 2
        assert history.visit_count(1, "news.com") == 1
        assert history.visit_count(2, "news.com") == 0

    def test_unobserved_site_not_eligible(self):
        # Spec: only sites where the API was used enter the epoch's
        # topics computation.
        history = BrowsingHistory()
        history.record_page_visit("news.com", at=0)
        assert history.eligible_sites(0) == []

    def test_observation_makes_site_eligible(self):
        history = BrowsingHistory()
        history.record_page_visit("news.com", at=0)
        history.record_observation("news.com", "ads.com", at=0)
        assert history.eligible_sites(0) == ["news.com"]

    def test_observers_tracked_per_site(self):
        history = BrowsingHistory()
        history.record_observation("news.com", "a.com", at=0)
        history.record_observation("news.com", "b.com", at=0)
        history.record_observation("shop.com", "a.com", at=0)
        assert history.observers_of(0, "news.com") == {"a.com", "b.com"}
        assert history.observers_of(0, "shop.com") == {"a.com"}

    def test_observers_scoped_to_epoch(self):
        history = BrowsingHistory()
        history.record_observation("news.com", "a.com", at=0)
        assert history.observers_of(1, "news.com") == frozenset()


class TestQueries:
    def test_epochs_listing(self):
        history = BrowsingHistory()
        history.record_page_visit("a.com", at=EPOCH_DURATION * 3)
        history.record_page_visit("b.com", at=0)
        assert history.epochs() == [0, 3]

    def test_caller_observed_any(self):
        history = BrowsingHistory()
        history.record_observation("news.com", "a.com", at=0)
        assert history.caller_observed_any(0, "a.com", ["news.com", "x.com"])
        assert not history.caller_observed_any(0, "b.com", ["news.com"])
        assert not history.caller_observed_any(1, "a.com", ["news.com"])

    def test_empty_epoch_queries(self):
        history = BrowsingHistory()
        assert history.eligible_sites(5) == []
        assert history.visit_count(5, "x.com") == 0
        assert history.observers_of(5, "x.com") == frozenset()

    def test_prune(self):
        history = BrowsingHistory()
        for epoch in range(6):
            history.record_observation("a.com", "cp.com", at=epoch * EPOCH_DURATION)
        history.prune_before(4)
        assert history.epochs() == [4, 5]

    def test_clear(self):
        history = BrowsingHistory()
        history.record_observation("a.com", "cp.com", at=0)
        history.clear()
        assert history.epochs() == []
