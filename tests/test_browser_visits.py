"""Integration-level tests for Browser.visit against the shared world."""

import pytest

from repro.browser.browser import Browser, ERROR_UNKNOWN_HOST
from repro.browser.topics.types import ApiCallType
from repro.web.site import RogueVariant
from repro.web.thirdparty import GTM_DOMAIN


@pytest.fixture
def browser(world) -> Browser:
    return Browser(world, corrupt_allowlist=True)


def find_site(world, predicate):
    for site in world.websites:
        if site.reachable and predicate(site):
            return site
    raise AssertionError("no matching site in the shared world")


class TestBasicVisit:
    def test_successful_visit(self, browser, world):
        site = find_site(world, lambda s: s.redirect_to is None)
        outcome = browser.visit(site.domain)
        assert outcome.ok
        assert outcome.final_domain == site.domain
        assert outcome.url == f"https://www.{site.domain}/"
        assert not outcome.redirected

    def test_unknown_domain(self, browser):
        outcome = browser.visit("not-a-site.example")
        assert not outcome.ok
        assert outcome.error == ERROR_UNKNOWN_HOST

    def test_unreachable_site(self, browser, world):
        from repro.browser.failures import FailureKind

        site = next(s for s in world.websites if not s.reachable)
        outcome = browser.visit(site.domain)
        assert not outcome.ok
        assert outcome.error in {kind.value for kind in FailureKind}

    def test_clock_advances_per_visit(self, browser, world):
        site = find_site(world, lambda s: True)
        before = browser.clock.now()
        browser.visit(site.domain)
        assert browser.clock.now() > before

    def test_page_host_in_loaded_hosts(self, browser, world):
        site = find_site(world, lambda s: s.redirect_to is None)
        outcome = browser.visit(site.domain)
        assert f"www.{site.domain}" in outcome.loaded_hosts

    def test_banner_surfaced(self, browser, world):
        site = find_site(world, lambda s: s.banner is not None and not s.redirect_to)
        outcome = browser.visit(site.domain)
        assert outcome.banner is site.banner


class TestConsentGating:
    def test_gated_scripts_absent_before_consent(self, browser, world):
        site = find_site(
            world,
            lambda s: s.gates_before_consent
            and s.redirect_to is None
            and any(
                world.is_consent_gated(d) for d in s.embedded
            ),
        )
        gated_domains = {
            d for d in site.embedded if world.is_consent_gated(d)
        }
        before = browser.visit(site.domain)
        assert not (before.third_party_domains & gated_domains)

    def test_gated_scripts_load_after_consent(self, browser, world):
        site = find_site(
            world,
            lambda s: s.gates_before_consent
            and s.redirect_to is None
            and any(world.is_consent_gated(d) for d in s.embedded),
        )
        gated_domains = {d for d in site.embedded if world.is_consent_gated(d)}
        browser.consent.grant(site.domain)
        after = browser.visit(site.domain)
        assert gated_domains <= after.third_party_domains

    def test_explicit_consent_override(self, browser, world):
        site = find_site(
            world,
            lambda s: s.gates_before_consent
            and s.redirect_to is None
            and any(world.is_consent_gated(d) for d in s.embedded),
        )
        gated = {d for d in site.embedded if world.is_consent_gated(d)}
        outcome = browser.visit(site.domain, consent_granted=True)
        assert gated <= outcome.third_party_domains

    def test_ungated_third_parties_always_load(self, browser, world):
        site = find_site(
            world,
            lambda s: GTM_DOMAIN in s.embedded and s.redirect_to is None,
        )
        outcome = browser.visit(site.domain)
        assert GTM_DOMAIN in outcome.third_party_domains


class TestRogueCalls:
    def test_root_gtm_call_attributed_to_site(self, browser, world):
        site = find_site(
            world,
            lambda s: s.rogue is not None
            and s.rogue.variant is RogueVariant.ROOT_GTM,
        )
        outcome = browser.visit(site.domain, consent_granted=True)
        rogue_calls = [c for c in outcome.topics_calls if c.caller == site.domain]
        assert rogue_calls
        assert all(c.call_type is ApiCallType.JAVASCRIPT for c in rogue_calls)
        assert len(rogue_calls) == site.rogue.call_count

    def test_sibling_call_attributed_to_sibling(self, browser, world):
        from repro.util.psl import etld_plus_one, same_second_level

        site = find_site(
            world,
            lambda s: s.rogue is not None
            and s.rogue.variant is RogueVariant.SIBLING,
        )
        outcome = browser.visit(site.domain, consent_granted=True)
        expected_caller = etld_plus_one(site.rogue.caller_host)
        callers = {c.caller for c in outcome.topics_calls}
        assert expected_caller in callers
        assert same_second_level(expected_caller, site.domain)

    def test_redirect_followed_and_attributed(self, browser, world):
        site = find_site(
            world,
            lambda s: s.rogue is not None
            and s.rogue.variant is RogueVariant.REDIRECT,
        )
        outcome = browser.visit(site.domain, consent_granted=True)
        assert outcome.redirected
        assert outcome.final_domain == site.redirect_to
        callers = {c.caller for c in outcome.topics_calls}
        assert site.redirect_to in callers

    def test_rogue_respects_before_consent_flag(self, browser, world):
        site = find_site(
            world,
            lambda s: s.rogue is not None
            and s.rogue.variant is RogueVariant.ROOT_GTM
            and not s.rogue.fires_before_consent,
        )
        outcome = browser.visit(site.domain, consent_granted=False)
        assert site.domain not in {c.caller for c in outcome.topics_calls}

    def test_rogue_fires_before_when_flagged(self, browser, world):
        site = find_site(
            world,
            lambda s: s.rogue is not None
            and s.rogue.variant is RogueVariant.ROOT_GTM
            and s.rogue.fires_before_consent,
        )
        outcome = browser.visit(site.domain, consent_granted=False)
        assert site.domain in {c.caller for c in outcome.topics_calls}


class TestAllowlistModes:
    def test_healthy_browser_blocks_rogue_calls(self, world):
        browser = Browser(world, corrupt_allowlist=False)
        site = find_site(
            world,
            lambda s: s.rogue is not None
            and s.rogue.variant is RogueVariant.ROOT_GTM,
        )
        outcome = browser.visit(site.domain, consent_granted=True)
        rogue = [c for c in outcome.topics_calls if c.caller == site.domain]
        assert rogue and all(not c.allowed for c in rogue)

    def test_corrupt_browser_allows_rogue_calls(self, browser, world):
        site = find_site(
            world,
            lambda s: s.rogue is not None
            and s.rogue.variant is RogueVariant.ROOT_GTM,
        )
        outcome = browser.visit(site.domain, consent_granted=True)
        rogue = [c for c in outcome.topics_calls if c.caller == site.domain]
        assert rogue and all(c.allowed for c in rogue)

    def test_refresh_allowlist_heals(self, world):
        browser = Browser(world, corrupt_allowlist=True)
        assert browser.allowlist_db.is_corrupt
        browser.refresh_allowlist()
        assert not browser.allowlist_db.is_corrupt


class TestLegitimateCalls:
    def test_enabled_cp_calls_after_consent(self, browser, world):
        # doubleclick's policy is deterministic: find a site where it is
        # both embedded and A/B-enabled.
        policy = world.policy_of("doubleclick.net")
        site = find_site(
            world,
            lambda s: "doubleclick.net" in s.embedded
            and s.redirect_to is None
            and policy.is_enabled("doubleclick.net", s.domain, 10),
        )
        outcome = browser.visit(site.domain, consent_granted=True)
        assert "doubleclick.net" in {c.caller for c in outcome.topics_calls}

    def test_disabled_cp_stays_silent(self, browser, world):
        policy = world.policy_of("doubleclick.net")
        site = find_site(
            world,
            lambda s: "doubleclick.net" in s.embedded
            and s.redirect_to is None
            and s.rogue is None
            and not policy.is_enabled("doubleclick.net", s.domain, 10),
        )
        outcome = browser.visit(site.domain, consent_granted=True)
        assert "doubleclick.net" not in {c.caller for c in outcome.topics_calls}

    def test_call_types_match_policy(self, browser, world):
        policy = world.policy_of("doubleclick.net")
        site = find_site(
            world,
            lambda s: "doubleclick.net" in s.embedded
            and s.redirect_to is None
            and policy.is_enabled("doubleclick.net", s.domain, 10),
        )
        outcome = browser.visit(site.domain, consent_granted=True)
        dbl_calls = [c for c in outcome.topics_calls if c.caller == "doubleclick.net"]
        expected = policy.pick_call_type("doubleclick.net", site.domain)
        assert all(c.call_type is expected for c in dbl_calls)

    def test_distillery_calls_on_own_site(self, browser, world):
        outcome = browser.visit("distillery.com", consent_granted=True)
        assert "distillery.com" in {c.caller for c in outcome.topics_calls}
