"""Tests for the seed-grid robustness machinery."""

import pytest

from repro.experiments.paper import PAPER
from repro.experiments.robustness import (
    SCALE_FREE_KEYS,
    QuantitySummary,
    render_robustness,
    run_seed_grid,
)


class TestQuantitySummary:
    def test_statistics(self):
        summary = QuantitySummary("k", "d", 10.0, (9.0, 10.0, 11.0))
        assert summary.mean == 10.0
        assert summary.spread == pytest.approx(0.8165, abs=1e-3)

    def test_single_value_spread_zero(self):
        assert QuantitySummary("k", "d", 1.0, (1.0,)).spread == 0.0

    def test_scale_free_classification(self):
        assert QuantitySummary(
            "crawl.accept_rate", "d", 0.339, (0.34,)
        ).scale_free
        assert not QuantitySummary("crawl.ok", "d", 43405, (900,)).scale_free

    def test_scale_free_keys_exist_in_paper(self):
        assert SCALE_FREE_KEYS <= set(PAPER)

    def test_band_check(self):
        summary = QuantitySummary(
            "crawl.accept_rate", "d", PAPER["crawl.accept_rate"].value,
            (0.34, 0.35),
        )
        assert summary.all_within_band
        bad = QuantitySummary(
            "crawl.accept_rate", "d", PAPER["crawl.accept_rate"].value,
            (0.34, 0.9),
        )
        assert not bad.all_within_band


class TestGrid:
    @pytest.fixture(scope="class")
    def grid(self):
        return run_seed_grid(1_500, [3, 9])

    def test_one_result_per_seed(self, grid):
        results, _ = grid
        assert len(results) == 2

    def test_summaries_cover_all_quantities(self, grid):
        results, summaries = grid
        assert len(summaries) == len(results[0].comparisons())
        assert all(len(s.values) == 2 for s in summaries)

    def test_structural_constants_seed_independent(self, grid):
        _, summaries = grid
        by_key = {s.key: s for s in summaries}
        assert by_key["table1.allowed"].spread == 0.0
        assert by_key["anomalous.javascript"].spread == 0.0

    def test_render(self, grid):
        _, summaries = grid
        text = render_robustness(summaries, [3, 9])
        assert "Seed grid" in text and "in band" in text

    def test_empty_seed_list_rejected(self):
        with pytest.raises(ValueError):
            run_seed_grid(500, [])
