"""Hot-path cache correctness: PSL memoization, gating cache, buffered IO.

Each cache must be semantically invisible: memoized PSL lookups return
exactly what a cold instance returns, the allow-list decision cache is
invalidated by every state transition, and batched JSONL writes produce
byte-identical files.
"""

import io

import pytest

from repro.attestation.allowlist import (
    AllowList,
    AllowListDatabase,
    GatingDecision,
)
from repro.obs import Tracer
from repro.util.fsio import BufferedLineWriter
from repro.util.psl import PublicSuffixList

#: Hostname corpus spanning every lookup regime: single-label TLDs,
#: multi-label suffixes, deep subdomains, trailing dots, mixed case, and
#: bare public suffixes (the Chromium graceful-fallback path).
HOSTNAME_CORPUS = (
    "www.example.com",
    "example.com",
    "ad.foo.net",
    "www.foo.com",
    "tracker.cdn.foo.org",
    "www.example.co.uk",
    "www.shop.example.co.uk",
    "example.co.uk",
    "a.b.c.d.example.com.br",
    "WWW.EXAMPLE.COM",
    "Example.Co.UK",
    "www.example.com.",
    "example.co.jp.",
    "co.uk",
    "co.uk.",
    "com",
    "localhost",
)


class TestPSLMemoization:
    def test_cached_results_match_cold_instance(self):
        cached = PublicSuffixList()
        for hostname in HOSTNAME_CORPUS * 3:  # repeated → served from cache
            cold = PublicSuffixList()  # fresh instance: never a cache hit
            assert cached.public_suffix(hostname) == cold.public_suffix(hostname)
            assert cached.registrable_domain(hostname) == cold.registrable_domain(
                hostname
            )

    def test_repeat_lookups_hit_the_cache(self):
        psl = PublicSuffixList()
        psl.registrable_domain("www.example.co.uk")
        assert "www.example.co.uk" in psl._cache
        assert psl._cache["www.example.co.uk"] == ("co.uk", "example.co.uk")

    @pytest.mark.parametrize("bad", ["", "   ", "a..b.com", ".", ".."])
    def test_malformed_hostnames_raise_and_are_not_cached(self, bad):
        psl = PublicSuffixList()
        with pytest.raises(ValueError):
            psl.public_suffix(bad)
        assert bad not in psl._cache
        with pytest.raises(ValueError):  # second call raises identically
            psl.public_suffix(bad)

    def test_cache_overflow_clears_but_stays_correct(self, monkeypatch):
        import repro.util.psl as psl_module

        monkeypatch.setattr(psl_module, "_CACHE_LIMIT", 4)
        psl = PublicSuffixList()
        for index in range(20):
            assert (
                psl.registrable_domain(f"www.site{index}.com") == f"site{index}.com"
            )
        assert len(psl._cache) + len(psl._stale) <= 4
        assert psl.registrable_domain("www.site0.com") == "site0.com"

    def test_hot_entries_survive_crossing_the_limit(self):
        """Regression: crossing the cache limit used to drop the whole
        dict, cold-starting every hot caller at once.  With segmented
        eviction, an entry touched at least once per generation is
        promoted before its generation dies — it must never be
        recomputed while one-shot hostnames stream past."""
        psl = PublicSuffixList(cache_limit=8)
        hot = "bid.criteo.co.uk"
        psl.registrable_domain(hot)
        for index in range(100):
            # Interleave the hot lookup with a stream of one-shot
            # hostnames that forces many generation turnovers.
            psl.registrable_domain(f"www.oneshot{index}.com")
            psl.registrable_domain(hot)
            assert hot in psl._cache or hot in psl._stale
        assert psl.registrable_domain(hot) == "criteo.co.uk"

    def test_one_shot_entries_age_out(self):
        psl = PublicSuffixList(cache_limit=8)
        psl.registrable_domain("www.oneshot.com")
        for index in range(50):  # never touched again → evicted
            psl.registrable_domain(f"www.filler{index}.com")
        assert "www.oneshot.com" not in psl._cache
        assert "www.oneshot.com" not in psl._stale

    def test_bare_suffix_fallback_preserved(self):
        psl = PublicSuffixList()
        # Chromium's graceful fallback: a bare suffix comes back
        # normalised (lowercased, trailing dot stripped) but unchanged.
        assert psl.registrable_domain("co.uk") == "co.uk"
        assert psl.registrable_domain("Co.UK.") == "co.uk"
        assert psl.registrable_domain("com") == "com"


class TestGatingDecisionCache:
    @pytest.fixture
    def database(self):
        return AllowListDatabase.from_allowlist(
            AllowList.of(["enrolled.com", "partner.org"])
        )

    def test_decisions_cached_per_caller(self, database):
        first = database.check_caller("api.enrolled.com")
        assert first is GatingDecision.ALLOWED_ENROLLED
        assert database._decisions["api.enrolled.com"] is first
        assert database.check_caller("api.enrolled.com") is first

    def test_corrupt_invalidates_cached_block(self, database):
        assert (
            database.check_caller("rogue.example")
            is GatingDecision.BLOCKED_NOT_ENROLLED
        )
        database.corrupt()
        # A stale cache entry would keep blocking — the Chromium bug
        # default-allows every caller once the database is corrupt.
        assert (
            database.check_caller("rogue.example")
            is GatingDecision.ALLOWED_DATABASE_CORRUPT
        )

    def test_remove_invalidates_cached_block(self, database):
        database.check_caller("rogue.example")
        database.remove()
        assert (
            database.check_caller("rogue.example")
            is GatingDecision.ALLOWED_DATABASE_CORRUPT
        )

    def test_update_invalidates_cached_decisions(self, database):
        assert (
            database.check_caller("newcomer.net")
            is GatingDecision.BLOCKED_NOT_ENROLLED
        )
        database.update(
            AllowList.of(["enrolled.com", "newcomer.net"]).serialize()
        )
        assert (
            database.check_caller("newcomer.net")
            is GatingDecision.ALLOWED_ENROLLED
        )

    def test_repair_after_corruption_restores_gating(self, database):
        database.corrupt()
        assert database.check_caller("rogue.example").allowed
        database.update(AllowList.of(["enrolled.com"]).serialize())
        assert (
            database.check_caller("rogue.example")
            is GatingDecision.BLOCKED_NOT_ENROLLED
        )


class TestBufferedLineWriter:
    def test_output_identical_to_unbuffered(self):
        lines = [f'{{"seq": {i}}}' for i in range(2500)]
        buffered = io.StringIO()
        with BufferedLineWriter(buffered, batch_size=1024) as writer:
            for line in lines:
                writer.write_line(line)
        assert buffered.getvalue() == "".join(f"{line}\n" for line in lines)

    def test_batches_reduce_write_calls(self):
        class CountingHandle(io.StringIO):
            writes = 0

            def write(self, text):
                CountingHandle.writes += 1
                return super().write(text)

        handle = CountingHandle()
        with BufferedLineWriter(handle, batch_size=100) as writer:
            for index in range(1000):
                writer.write_line(str(index))
        assert CountingHandle.writes == 10

    def test_invalid_batch_size_rejected(self):
        with pytest.raises(ValueError):
            BufferedLineWriter(io.StringIO(), batch_size=0)

    def test_aborted_export_leaves_no_partial_batch(self):
        """Regression: ``__exit__`` used to flush pending lines even when
        an exception was propagating, appending a torn trailing batch to
        the file a failed export leaves behind."""
        handle = io.StringIO()
        with pytest.raises(RuntimeError):
            with BufferedLineWriter(handle, batch_size=100) as writer:
                for index in range(250):  # two full batches reach the handle
                    writer.write_line(str(index))
                raise RuntimeError("export died mid-stream")
        written = handle.getvalue().splitlines()
        # Only the complete batches written before the failure survive;
        # the 50 queued lines are discarded with the export.
        assert written == [str(index) for index in range(200)]

    def test_aborted_export_with_empty_queue_is_clean(self):
        handle = io.StringIO()
        with pytest.raises(ValueError):
            with BufferedLineWriter(handle, batch_size=10):
                raise ValueError("nothing queued yet")
        assert handle.getvalue() == ""

    def test_tracer_export_roundtrips_through_buffer(self, tmp_path):
        tracer = Tracer()
        for index in range(3000):  # crosses multiple write batches
            tracer.emit("visit-finished", at=index, domain=f"site{index}.com")
        path = tmp_path / "trace.jsonl"
        tracer.to_jsonl(path)
        events = Tracer.read_jsonl(path)
        assert len(events) == 3000
        assert events[0].fields == {"domain": "site0.com"}
        meta = Tracer.read_meta(path)
        assert meta is not None and meta.emitted == 3000
