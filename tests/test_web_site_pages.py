"""Tests for Website.build_page and the declarative iframe topics path."""

import pytest

from repro.browser.browser import Browser
from repro.browser.topics.types import ApiCallType
from repro.util.urls import https
from repro.web.banner import ConsentBanner
from repro.web.generator import SyntheticWeb
from repro.web.page import IFrameTag, ScriptKind
from repro.web.site import RogueVariant, Website
from repro.web.tlds import Region


class TestBuildPage:
    def test_page_url_is_www_host(self, world):
        site = next(s for s in world.websites if s.redirect_to is None)
        page = site.build_page(world)
        assert page.url.host == f"www.{site.domain}"

    def test_embedded_services_become_tags(self, world):
        site = next(
            s
            for s in world.websites
            if s.redirect_to is None and len(s.embedded) > 5
        )
        page = site.build_page(world)
        script_hosts = {tag.src.host for tag in page.scripts}
        for tp_domain in site.embedded:
            assert any(tp_domain in host for host in script_hosts), tp_domain

    def test_cmp_script_present_for_cmp_banners(self, world):
        site = next(
            s
            for s in world.websites
            if s.banner is not None and s.banner.cmp is not None
            and s.redirect_to is None
        )
        page = site.build_page(world)
        cmp_domain = world.cmp_domain(site.banner.cmp)
        assert any(cmp_domain in tag.src.host for tag in page.scripts)

    def test_ad_tags_marked(self, world):
        site = next(
            s
            for s in world.websites
            if s.redirect_to is None and "criteo.com" in s.embedded
        )
        page = site.build_page(world)
        criteo_tag = next(
            tag for tag in page.scripts if "criteo.com" in tag.src.host
        )
        assert criteo_tag.kind is ScriptKind.AD_TAG

    def test_gating_consistency(self, world):
        # On gating sites every consent-gated service's tag is gated.
        site = next(
            s
            for s in world.websites
            if s.gates_before_consent
            and s.redirect_to is None
            and any(world.is_consent_gated(d) for d in s.embedded)
        )
        page = site.build_page(world)
        for tag in page.scripts:
            if tag.kind is ScriptKind.AD_TAG:
                assert tag.gated

    def test_rogue_sibling_iframe_present(self, world):
        site = next(
            s
            for s in world.websites
            if s.rogue is not None and s.rogue.variant is RogueVariant.SIBLING
        )
        page = site.build_page(world)
        assert any(
            frame.src.host == site.rogue.caller_host for frame in page.iframes
        )


class TestDeclarativeTopicsIframe:
    @pytest.fixture
    def custom_world(self, world) -> SyntheticWeb:
        # Splice a hand-built site carrying an <iframe browsingtopics>
        # into a copy of the shared world's lookup.
        site = Website(
            domain="handmade.com",
            rank=0,
            tld="com",
            region=Region.COM,
            banner=ConsentBanner("en", "Accept all", None, False),
            embedded=(),
        )
        original_build = site.build_page

        def build_with_topics_iframe(ecosystem):
            page = original_build(ecosystem)
            page.iframes.append(
                IFrameTag(
                    src=https("ads.criteo.com", "/slot.html"),
                    browsingtopics_attr=True,
                )
            )
            return page

        site.build_page = build_with_topics_iframe  # type: ignore[method-assign]
        world.shadow_sites["handmade.com"] = site
        world._sites_by_domain["handmade.com"] = site  # noqa: SLF001
        yield world
        del world.shadow_sites["handmade.com"]
        del world._sites_by_domain["handmade.com"]  # noqa: SLF001

    def test_iframe_attr_calls_as_frame_source(self, custom_world):
        browser = Browser(custom_world, corrupt_allowlist=False)
        outcome = browser.visit("handmade.com", consent_granted=True)
        iframe_calls = [
            call
            for call in outcome.topics_calls
            if call.call_type is ApiCallType.IFRAME
        ]
        assert iframe_calls
        assert iframe_calls[0].caller == "criteo.com"
        assert iframe_calls[0].allowed  # criteo is enrolled
