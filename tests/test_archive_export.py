"""Tests for campaign archives and CSV exporters."""

import csv

import pytest

from repro.analysis.export import export_study
from repro.crawler.archive import load_crawl, save_crawl


class TestArchive:
    @pytest.fixture(scope="class")
    def loaded(self, crawl, tmp_path_factory):
        directory = tmp_path_factory.mktemp("campaign")
        save_crawl(crawl, directory)
        return load_crawl(directory)

    def test_datasets_round_trip(self, crawl, loaded):
        assert loaded.d_ba.records == crawl.d_ba.records
        assert loaded.d_aa.records == crawl.d_aa.records

    def test_allowed_round_trip(self, crawl, loaded):
        assert loaded.allowed_domains == crawl.allowed_domains

    def test_report_round_trip(self, crawl, loaded):
        assert loaded.report == crawl.report

    def test_survey_round_trip(self, crawl, loaded):
        assert loaded.survey.attested_domains() == crawl.survey.attested_domains()
        assert loaded.survey.issue_dates() == crawl.survey.issue_dates()

    def test_analysis_identical_after_round_trip(self, crawl, loaded, study):
        from repro.analysis.classify import build_table1

        table = build_table1(
            loaded.d_ba, loaded.d_aa, loaded.allowed_domains, loaded.survey
        )
        assert table == study.table1

    def test_missing_files_detected(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_crawl(tmp_path)

    def test_full_result_equality_after_round_trip(self, crawl, loaded):
        # The loaded archive is the same CrawlResult, not merely
        # field-by-field similar: every survey probe included.
        assert loaded.survey._by_domain == crawl.survey._by_domain
        reloaded_jsonl = "\n".join(r.to_json() for r in loaded.d_ba.records)
        original_jsonl = "\n".join(r.to_json() for r in crawl.d_ba.records)
        assert reloaded_jsonl == original_jsonl

    def test_save_is_atomic_and_canonical(self, crawl, tmp_path):
        first = save_crawl(crawl, tmp_path / "one")
        second = save_crawl(crawl, tmp_path / "two")
        # No write-to-temp artefacts survive a successful save.
        assert [p for p in first.rglob(".*tmp*")] == []
        # Saving the same campaign twice produces byte-identical files.
        for name in sorted(p.name for p in first.iterdir()):
            assert (first / name).read_bytes() == (second / name).read_bytes()

    def test_resaved_loaded_archive_is_byte_identical(self, crawl, tmp_path):
        original = save_crawl(crawl, tmp_path / "original")
        resaved = save_crawl(load_crawl(original), tmp_path / "resaved")
        for name in sorted(p.name for p in original.iterdir()):
            assert (original / name).read_bytes() == (resaved / name).read_bytes()


class TestExport:
    @pytest.fixture(scope="class")
    def exported(self, study, tmp_path_factory):
        directory = tmp_path_factory.mktemp("csv")
        return {path.name: path for path in export_study(study, directory)}

    def test_all_artefacts_written(self, exported):
        assert set(exported) == {
            "table1.csv",
            "figure2.csv",
            "figure3.csv",
            "figure5.csv",
            "figure6.csv",
            "figure7.csv",
            "anomalous.csv",
            "enrollment_timeline.csv",
        }

    def _rows(self, path):
        with path.open() as handle:
            return list(csv.DictReader(handle))

    def test_table1_rows(self, exported, study):
        rows = self._rows(exported["table1.csv"])
        assert len(rows) == 7
        allowed = next(r for r in rows if r["status"] == "Allowed")
        assert int(allowed["count"]) == study.table1.allowed_total

    def test_figure2_matches_study(self, exported, study):
        rows = self._rows(exported["figure2.csv"])
        assert [r["caller"] for r in rows] == [row.caller for row in study.fig2]
        assert all(
            int(r["called_on"]) <= int(r["present_on"]) for r in rows
        )

    def test_figure6_has_all_regions(self, exported):
        rows = self._rows(exported["figure6.csv"])
        regions = {r["region"] for r in rows}
        assert regions == {"com", "jp", "ru", "EU", "Other"}

    def test_figure7_probabilities(self, exported):
        rows = self._rows(exported["figure7.csv"])
        assert len(rows) == 15
        for row in rows:
            assert 0.0 <= float(row["p_cmp"]) <= 1.0

    def test_enrollment_monotone_months(self, exported):
        rows = self._rows(exported["enrollment_timeline.csv"])
        months = [r["month"] for r in rows]
        assert months == sorted(months)
