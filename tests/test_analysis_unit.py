"""Exact-arithmetic unit tests for the figure pipelines.

The study-level tests validate shapes against the simulation; these pin
the *formulas* with tiny hand-built datasets where every number is known.
"""

import pytest

from repro.analysis.abtest import figure3
from repro.analysis.cmp_analysis import average_questionable_rate, figure7
from repro.analysis.pervasiveness import figure2, share_of_sites_with_call
from repro.analysis.questionable import figure5, figure6
from repro.crawler.dataset import CallRecord, Dataset, VisitRecord
from repro.crawler.wellknown import AttestationProbe, AttestationSurvey
from repro.web.cmp import CmpCatalogue
from repro.web.tlds import Region

ALLOWED = frozenset({"cp-a.com", "cp-b.com"})
SURVEY = AttestationSurvey(
    [
        AttestationProbe("cp-a.com", True, True, issued="2023-07-01"),
        AttestationProbe("cp-b.com", True, True, issued="2023-08-01"),
    ]
)


def call(caller, site, call_type="javascript"):
    return CallRecord(
        caller=caller,
        caller_host=f"tags.{caller}",
        site=site,
        call_type=call_type,
        at=0,
        decision="allowed-enrolled",
        topics_returned=0,
    )


def record(domain, third_parties=(), calls=(), cmp=None):
    return VisitRecord(
        rank=1,
        domain=domain,
        final_domain=domain,
        url=f"https://www.{domain}/",
        final_url=f"https://www.{domain}/",
        phase="before-accept",
        banner_present=cmp is not None,
        banner_language="en" if cmp else None,
        accept_clicked=False,
        cmp=cmp,
        third_parties=tuple(third_parties),
        calls=tuple(calls),
    )


@pytest.fixture
def dataset() -> Dataset:
    return Dataset(
        "unit",
        [
            # cp-a present on 3 sites, calls on 2 of them.
            record("s1.com", ["cp-a.com"], [call("cp-a.com", "s1.com")]),
            record("s2.com", ["cp-a.com"], [call("cp-a.com", "s2.com")]),
            record("s3.com", ["cp-a.com"]),
            # cp-b present on 2 sites, calls on 1 (twice on the same page).
            record(
                "s4.ru",
                ["cp-b.com"],
                [call("cp-b.com", "s4.ru"), call("cp-b.com", "s4.ru")],
            ),
            record("s5.de", ["cp-b.com"]),
            # a site with no parties at all.
            record("s6.com"),
        ],
    )


class TestFigure2Exact:
    def test_counts(self, dataset):
        rows = {r.caller: r for r in figure2(dataset, ALLOWED, SURVEY)}
        assert rows["cp-a.com"].present_on == 3
        assert rows["cp-a.com"].called_on == 2
        assert rows["cp-b.com"].present_on == 2
        assert rows["cp-b.com"].called_on == 1

    def test_share(self, dataset):
        rows = {r.caller: r for r in figure2(dataset, ALLOWED, SURVEY)}
        assert rows["cp-a.com"].call_share == pytest.approx(2 / 3)

    def test_share_of_sites(self, dataset):
        # 3 of 6 sites have a call.
        assert share_of_sites_with_call(dataset, ALLOWED) == pytest.approx(0.5)


class TestFigure3Exact:
    def test_enabled_percent(self, dataset):
        rows = {
            r.caller: r
            for r in figure3(dataset, ALLOWED, SURVEY, min_presence=1)
        }
        assert rows["cp-a.com"].enabled_percent == pytest.approx(100 * 2 / 3)
        assert rows["cp-b.com"].enabled_percent == pytest.approx(50.0)

    def test_ordering(self, dataset):
        rows = figure3(dataset, ALLOWED, SURVEY, min_presence=1)
        assert [r.caller for r in rows] == ["cp-a.com", "cp-b.com"]


class TestFigure5Exact:
    def test_distinct_sites_counted(self, dataset):
        rows = {r.caller: r for r in figure5(dataset, ALLOWED, SURVEY)}
        assert rows["cp-a.com"].websites == 2
        # The double call on s4.ru counts one website.
        assert rows["cp-b.com"].websites == 1


class TestFigure6Exact:
    def test_regional_split(self, dataset):
        rows = figure6(dataset, ALLOWED, SURVEY, callers=["cp-b.com"])
        row = rows[0]
        assert row.present[Region.RU] == 1
        assert row.present[Region.EU] == 1
        assert row.called[Region.RU] == 1
        assert row.called[Region.EU] == 0
        assert row.enabled_percent(Region.RU) == 100.0
        assert row.enabled_percent(Region.EU) == 0.0
        assert row.enabled_percent(Region.JP) == 0.0


class TestFigure7Exact:
    def test_probabilities(self):
        catalogue = CmpCatalogue()
        dataset = Dataset(
            "unit",
            [
                record("q1.com", ["cp-a.com"], [call("cp-a.com", "q1.com")],
                       cmp="HubSpot"),
                record("q2.com", ["cp-a.com"], [call("cp-a.com", "q2.com")]),
                record("c1.com", cmp="HubSpot"),
                record("c2.com", cmp="OneTrust"),
                record("c3.com", cmp="OneTrust"),
                record("plain.com"),
            ],
        )
        rows = {r.name: r for r in figure7(dataset, ALLOWED, SURVEY, catalogue)}
        hubspot = rows["HubSpot"]
        assert hubspot.sites_total == 2
        assert hubspot.sites_questionable == 1
        assert hubspot.p_cmp == pytest.approx(2 / 6)
        assert hubspot.p_cmp_given_questionable == pytest.approx(1 / 2)
        assert hubspot.p_questionable_given_cmp == pytest.approx(1 / 2)
        assert hubspot.lift == pytest.approx((1 / 2) / (2 / 6))
        onetrust = rows["OneTrust"]
        assert onetrust.p_questionable_given_cmp == 0.0
        # Average over deployed CMPs: (1/2 + 0) / 2.
        assert average_questionable_rate(list(rows.values())) == pytest.approx(0.25)
