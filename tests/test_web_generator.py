"""Tests for world generation: structure, determinism, calibration bands.

These run against the shared session world (3,000 sites) — large enough
for rates to stabilise, small enough to stay fast.
"""

import pytest

from repro.web.config import WorldConfig
from repro.web.generator import ROGUE_LIB_DOMAIN, WebGenerator
from repro.web.site import RogueVariant
from repro.web.thirdparty import DISTILLERY_DOMAIN, GTM_DOMAIN, ThirdPartyCategory
from repro.web.tlds import Region, region_of_domain


class TestStructure:
    def test_site_count(self, world, small_config):
        assert len(world.websites) == small_config.site_count

    def test_ranks_sequential(self, world):
        assert [site.rank for site in world.websites] == list(
            range(1, len(world.websites) + 1)
        )

    def test_domains_unique(self, world):
        domains = [site.domain for site in world.websites]
        assert len(set(domains)) == len(domains)

    def test_tranco_matches_websites(self, world):
        assert world.tranco.domains == tuple(s.domain for s in world.websites)

    def test_site_lookup(self, world):
        site = world.websites[10]
        assert world.site(site.domain) is site
        assert world.resolve("definitely-not-generated.example") is None

    def test_domain_tld_matches_region(self, world):
        for site in world.websites[:500]:
            assert region_of_domain(site.domain) is site.region

    def test_config_validation(self):
        with pytest.raises(ValueError):
            WorldConfig(site_count=0)
        with pytest.raises(ValueError):
            WorldConfig(failure_rate=1.5)
        with pytest.raises(ValueError):
            WorldConfig(region_weights={Region.COM: 0.5})


class TestDeterminism:
    def test_same_seed_same_world(self):
        config = WorldConfig.small(300, seed=9)
        world_a = WebGenerator(config).generate()
        world_b = WebGenerator(WorldConfig.small(300, seed=9)).generate()
        assert [s.domain for s in world_a.websites] == [
            s.domain for s in world_b.websites
        ]
        assert [s.embedded for s in world_a.websites] == [
            s.embedded for s in world_b.websites
        ]
        assert [s.rogue for s in world_a.websites] == [
            s.rogue for s in world_b.websites
        ]

    def test_different_seed_different_world(self):
        world_a = WebGenerator(WorldConfig.small(300, seed=1)).generate()
        world_b = WebGenerator(WorldConfig.small(300, seed=2)).generate()
        assert [s.domain for s in world_a.websites] != [
            s.domain for s in world_b.websites
        ]


class TestEcosystem:
    def test_allowed_total(self, world, small_config):
        assert len(world.registry.allowed_domains()) == small_config.allowed_total

    def test_unattested_count(self, world, small_config):
        allowed = world.registry.allowed_domains()
        unattested = [d for d in allowed if not world.registry.is_attested(d)]
        assert len(unattested) == small_config.unattested_allowed

    def test_distillery_site_exists(self, world):
        site = world.site(DISTILLERY_DOMAIN)
        assert DISTILLERY_DOMAIN in site.embedded
        assert site.banner is not None and site.banner.language == "en"
        assert world.registry.is_attested(DISTILLERY_DOMAIN)
        assert not world.registry.is_allowed(DISTILLERY_DOMAIN)

    def test_rogue_lib_registered(self, world):
        assert ROGUE_LIB_DOMAIN in world.third_parties

    def test_unknown_domain_is_widget(self, world):
        assert world.category_of("never-seen.example") is ThirdPartyCategory.WIDGET

    def test_well_known_serving(self, world):
        allowed = sorted(world.registry.allowed_domains())
        attested = [d for d in allowed if world.registry.is_attested(d)]
        payload = world.well_known_payload(attested[0], now=0)
        assert payload is not None and "topics_api" in payload

    def test_long_tail_pool_size(self, world, small_config):
        widgets = [
            tp
            for tp in world.third_parties.values()
            if tp.category is ThirdPartyCategory.WIDGET
        ]
        assert len(widgets) >= small_config.long_tail_pool_size


class TestCalibrationBands:
    """Generated rates must sit near their configured targets."""

    def test_failure_rate(self, world, small_config):
        failed = sum(1 for s in world.websites if not s.reachable)
        rate = failed / len(world.websites)
        assert abs(rate - small_config.failure_rate) < 0.02

    def test_region_mix(self, world, small_config):
        for region, weight in small_config.region_weights.items():
            share = sum(1 for s in world.websites if s.region is region) / len(
                world.websites
            )
            assert abs(share - weight) < 0.03, region

    def test_rogue_rate(self, world, small_config):
        rogues = sum(1 for s in world.websites if s.rogue is not None)
        rate = rogues / len(world.websites)
        assert abs(rate - small_config.rogue_rate) < 0.02

    def test_rogue_gtm_share(self, world, small_config):
        rogues = [s for s in world.websites if s.rogue is not None]
        with_gtm = sum(1 for s in rogues if GTM_DOMAIN in s.embedded)
        assert abs(with_gtm / len(rogues) - small_config.rogue_gtm_share) < 0.03

    def test_rogue_lib_on_gtm_less_rogues(self, world):
        for site in world.websites:
            if site.rogue is None or GTM_DOMAIN in site.embedded:
                continue
            if site.rogue.variant in (RogueVariant.ROOT_LIB,):
                assert ROGUE_LIB_DOMAIN in site.embedded

    def test_banner_rates_by_region(self, world, small_config):
        for region, expected in small_config.banner_probability.items():
            sites = [s for s in world.websites if s.region is region]
            if len(sites) < 100:
                continue
            share = sum(1 for s in sites if s.banner is not None) / len(sites)
            assert abs(share - expected) < 0.08, region


class TestRogueVariants:
    def test_all_variants_generated(self, world):
        variants = {s.rogue.variant for s in world.websites if s.rogue}
        assert RogueVariant.SIBLING in variants
        assert RogueVariant.ENTITY in variants
        assert RogueVariant.REDIRECT in variants
        assert RogueVariant.ROOT_GTM in variants

    def test_sibling_shares_second_level(self, world):
        from repro.util.psl import same_second_level

        for site in world.websites:
            if site.rogue and site.rogue.variant is RogueVariant.SIBLING:
                assert same_second_level(site.rogue.caller_host, site.domain)
                assert site.rogue.caller_host != f"www.{site.domain}"

    def test_entity_partner_registered(self, world):
        for site in world.websites:
            if site.rogue and site.rogue.variant is RogueVariant.ENTITY:
                assert world.entities.same_entity(
                    site.rogue.caller_host, site.domain
                )

    def test_redirect_has_shadow_site(self, world):
        for site in world.websites:
            if site.rogue and site.rogue.variant is RogueVariant.REDIRECT:
                assert site.redirect_to is not None
                shadow = world.site(site.redirect_to)
                assert shadow.rogue is not None
                assert shadow.rogue.variant in (
                    RogueVariant.ROOT_GTM,
                    RogueVariant.ROOT_LIB,
                )
                assert world.entities.same_entity(site.domain, site.redirect_to)

    def test_non_redirect_sites_do_not_redirect(self, world):
        for site in world.websites:
            if site.rogue is None or site.rogue.variant is not RogueVariant.REDIRECT:
                assert site.redirect_to is None
