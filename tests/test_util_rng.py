"""Unit tests for the named deterministic random streams."""

import pytest

from repro.util.rng import RngStream, derive_seed


class TestDeriveSeed:
    def test_same_inputs_same_seed(self):
        assert derive_seed(1, "a", "b") == derive_seed(1, "a", "b")

    def test_different_root_seeds_differ(self):
        assert derive_seed(1, "a") != derive_seed(2, "a")

    def test_different_names_differ(self):
        assert derive_seed(1, "a") != derive_seed(1, "b")

    def test_path_is_not_concatenation(self):
        # ("ab",) and ("a", "b") must be distinct paths.
        assert derive_seed(1, "ab") != derive_seed(1, "a", "b")

    def test_accepts_integer_names(self):
        assert derive_seed(1, 42) == derive_seed(1, 42)
        assert derive_seed(1, 42) == derive_seed(1, "42")

    def test_stable_across_calls(self):
        # A regression pin: the derivation must never change, or every
        # generated world changes under users' feet.
        assert derive_seed(0) == derive_seed(0)
        assert isinstance(derive_seed(0), int)


class TestRngStream:
    def test_reproducible_sequence(self):
        a = RngStream(7, "x")
        b = RngStream(7, "x")
        assert [a.random() for _ in range(10)] == [b.random() for _ in range(10)]

    def test_children_are_independent_of_parent_draws(self):
        parent_a = RngStream(7, "p")
        child_before = parent_a.child("c").random()
        parent_b = RngStream(7, "p")
        for _ in range(100):
            parent_b.random()  # consume parent draws
        child_after = parent_b.child("c").random()
        assert child_before == child_after

    def test_child_path_naming(self):
        stream = RngStream(1, "web").child("site", 5)
        assert stream.name == "web/site/5"

    def test_root_name(self):
        assert RngStream(1).name == "<root>"

    def test_bernoulli_extremes(self):
        stream = RngStream(1, "b")
        assert stream.bernoulli(0.0) is False
        assert stream.bernoulli(1.0) is True
        assert stream.bernoulli(-0.5) is False
        assert stream.bernoulli(1.5) is True

    def test_bernoulli_rate_approximation(self):
        stream = RngStream(1, "b")
        hits = sum(stream.bernoulli(0.3) for _ in range(20_000))
        assert 0.27 < hits / 20_000 < 0.33

    def test_randint_bounds(self):
        stream = RngStream(1, "i")
        values = {stream.randint(2, 5) for _ in range(200)}
        assert values == {2, 3, 4, 5}

    def test_weighted_choice_respects_zero_weight(self):
        stream = RngStream(1, "w")
        picks = {stream.weighted_choice(["a", "b"], [1.0, 0.0]) for _ in range(50)}
        assert picks == {"a"}

    def test_weighted_choice_length_mismatch(self):
        with pytest.raises(ValueError):
            RngStream(1, "w").weighted_choice(["a"], [1.0, 2.0])

    def test_zipf_rank_weights_shape(self):
        weights = RngStream(1).zipf_rank_weights(4, exponent=1.0)
        assert weights == [1.0, 0.5, pytest.approx(1 / 3), 0.25]

    def test_zipf_rank_weights_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            RngStream(1).zipf_rank_weights(0)

    def test_subset_probability_one_keeps_everything(self):
        stream = RngStream(1, "s")
        assert stream.subset([1, 2, 3], 1.0) == [1, 2, 3]

    def test_geometric_zero_mean(self):
        assert RngStream(1, "g").geometric(0.0) == 0

    def test_geometric_mean_approximation(self):
        stream = RngStream(1, "g")
        draws = [stream.geometric(5.0) for _ in range(20_000)]
        assert 4.6 < sum(draws) / len(draws) < 5.4

    def test_geometric_rejects_negative(self):
        with pytest.raises(ValueError):
            RngStream(1, "g").geometric(-1.0)

    def test_weighted_indices_in_range(self):
        stream = RngStream(1, "wi")
        cumulative = [1.0, 3.0, 6.0]
        picks = stream.weighted_indices(cumulative, 500)
        assert all(0 <= index < 3 for index in picks)

    def test_weighted_indices_distribution(self):
        stream = RngStream(1, "wi")
        cumulative = [1.0, 1.0 + 9.0]  # weights 1 and 9
        picks = stream.weighted_indices(cumulative, 5_000)
        share_second = sum(1 for index in picks if index == 1) / len(picks)
        assert 0.85 < share_second < 0.95

    def test_weighted_indices_empty_rejected(self):
        with pytest.raises(ValueError):
            RngStream(1).weighted_indices([], 1)

    def test_sample_distinct(self):
        stream = RngStream(1, "sa")
        picked = stream.sample(list(range(100)), 10)
        assert len(set(picked)) == 10

    def test_shuffle_is_permutation(self):
        stream = RngStream(1, "sh")
        items = list(range(20))
        shuffled = items[:]
        stream.shuffle(shuffled)
        assert sorted(shuffled) == items
