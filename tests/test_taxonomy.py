"""Unit tests for the Topics taxonomy tree, data and classifier."""

import pytest

from repro.taxonomy.classifier import MAX_TOPICS_PER_SITE, SiteClassifier
from repro.taxonomy.data import taxonomy_entries
from repro.taxonomy.tree import TaxonomyTree, TopicNode, load_default_taxonomy


@pytest.fixture(scope="module")
def taxonomy() -> TaxonomyTree:
    return load_default_taxonomy()


class TestTopicNode:
    def test_name_is_leaf(self):
        node = TopicNode(5, "/Arts & Entertainment/Music & Audio/Jazz")
        assert node.name == "Jazz"

    def test_parent_path(self):
        node = TopicNode(5, "/A/B/C")
        assert node.parent_path == "/A/B"

    def test_root_has_no_parent(self):
        assert TopicNode(1, "/News").parent_path is None

    def test_depth(self):
        assert TopicNode(1, "/News").depth == 1
        assert TopicNode(2, "/News/Politics").depth == 2


class TestEmbeddedData:
    def test_size_in_taxonomy_range(self, taxonomy):
        # The real Topics taxonomy has several hundred entries.
        assert 300 <= len(taxonomy) <= 800

    def test_root_count(self, taxonomy):
        # Google's taxonomy has ~two dozen top-level categories.
        assert 20 <= len(taxonomy.roots()) <= 30

    def test_ids_sequential_from_one(self):
        ids = [topic_id for topic_id, _ in taxonomy_entries()]
        assert ids == list(range(1, len(ids) + 1))

    def test_paths_unique(self):
        paths = [path for _, path in taxonomy_entries()]
        assert len(set(paths)) == len(paths)

    def test_every_parent_exists(self, taxonomy):
        for node in taxonomy:
            if node.parent_path is not None:
                assert taxonomy.by_path(node.parent_path)

    def test_expected_categories_present(self, taxonomy):
        for root in ("/News", "/Sports", "/Shopping", "/Arts & Entertainment"):
            assert taxonomy.by_path(root)


class TestTaxonomyTree:
    def test_contains_and_get(self, taxonomy):
        assert 1 in taxonomy
        assert taxonomy.get(1).topic_id == 1

    def test_get_unknown_raises(self, taxonomy):
        with pytest.raises(KeyError):
            taxonomy.get(10**6)

    def test_children_sorted(self, taxonomy):
        root = taxonomy.roots()[0]
        children = taxonomy.children(root.topic_id)
        assert [c.topic_id for c in children] == sorted(c.topic_id for c in children)

    def test_parent_child_inverse(self, taxonomy):
        for node in list(taxonomy)[:100]:
            for child in taxonomy.children(node.topic_id):
                parent = taxonomy.parent(child.topic_id)
                assert parent is not None and parent.topic_id == node.topic_id

    def test_ancestors_chain(self, taxonomy):
        deep = next(node for node in taxonomy if node.depth == 3)
        chain = taxonomy.ancestors(deep.topic_id)
        assert len(chain) == 2
        assert chain[-1].depth == 1

    def test_root_of(self, taxonomy):
        deep = next(node for node in taxonomy if node.depth == 3)
        assert taxonomy.root_of(deep.topic_id).depth == 1
        root = taxonomy.roots()[0]
        assert taxonomy.root_of(root.topic_id) == root

    def test_descendants(self, taxonomy):
        root = taxonomy.by_path("/Sports")
        descendants = taxonomy.descendants(root.topic_id)
        assert all(d.path.startswith("/Sports/") for d in descendants)
        assert len(descendants) >= 10

    def test_duplicate_id_rejected(self):
        with pytest.raises(ValueError):
            TaxonomyTree([TopicNode(1, "/A"), TopicNode(1, "/B")])

    def test_duplicate_path_rejected(self):
        with pytest.raises(ValueError):
            TaxonomyTree([TopicNode(1, "/A"), TopicNode(2, "/A")])

    def test_orphan_rejected(self):
        with pytest.raises(ValueError):
            TaxonomyTree([TopicNode(1, "/A/B")])

    def test_malformed_path_rejected(self):
        with pytest.raises(ValueError):
            TaxonomyTree([TopicNode(1, "no-slash")])


class TestClassifier:
    def test_deterministic(self, taxonomy):
        classifier = SiteClassifier(taxonomy)
        assert classifier.classify("news.example.com") == classifier.classify(
            "news.example.com"
        )

    def test_returns_one_to_three_topics(self, taxonomy):
        classifier = SiteClassifier(taxonomy)
        for host in ("a.com", "some.long.host.name.org", "x.io"):
            topics = classifier.classify(host)
            assert 1 <= len(topics) <= MAX_TOPICS_PER_SITE
            assert all(t in taxonomy for t in topics)

    def test_no_duplicate_topics(self, taxonomy):
        classifier = SiteClassifier(taxonomy)
        for index in range(50):
            topics = classifier.classify(f"site{index}.example.net")
            assert len(set(topics)) == len(topics)

    def test_override_tier_wins(self, taxonomy):
        classifier = SiteClassifier(taxonomy, overrides={"news.com": [1, 2]})
        assert classifier.classify("news.com") == (1, 2)
        assert classifier.has_override("NEWS.com")

    def test_override_case_insensitive(self, taxonomy):
        classifier = SiteClassifier(taxonomy)
        classifier.add_override("Shop.COM", [3])
        assert classifier.classify("shop.com") == (3,)

    def test_override_validation(self, taxonomy):
        classifier = SiteClassifier(taxonomy)
        with pytest.raises(ValueError):
            classifier.add_override("a.com", [])
        with pytest.raises(ValueError):
            classifier.add_override("a.com", [1, 2, 3, 4])
        with pytest.raises(ValueError):
            classifier.add_override("a.com", [10**6])

    def test_different_salts_differ(self, taxonomy):
        a = SiteClassifier(taxonomy, model_salt="m1")
        b = SiteClassifier(taxonomy, model_salt="m2")
        differing = sum(
            a.classify(f"host{i}.com") != b.classify(f"host{i}.com")
            for i in range(50)
        )
        assert differing > 25

    def test_distribution_spreads_over_taxonomy(self, taxonomy):
        classifier = SiteClassifier(taxonomy)
        seen: set[int] = set()
        for index in range(500):
            seen.update(classifier.classify(f"host-{index}.org"))
        assert len(seen) > len(taxonomy) // 4
