"""Tests for the repeated-visit probe and alternation detection (§3)."""

import pytest

from repro.analysis.abtest import detect_alternation
from repro.crawler.repeats import ObservationSeries, RepeatedVisitProbe


class TestObservationSeries:
    def test_runs_encoding(self):
        series = ObservationSeries(
            "cp.com", "s.com", (0, 1, 2, 3, 4), (True, True, False, False, True)
        )
        assert series.runs() == [(True, 2), (False, 2), (True, 1)]

    def test_single_run(self):
        series = ObservationSeries("cp.com", "s.com", (0, 1), (True, True))
        assert series.runs() == [(True, 2)]


class TestProbe:
    @pytest.fixture(scope="class")
    def series(self, world):
        # Probe sites that embed an alternating CP (doubleclick, 6-hour
        # windows) and are A/B-enabled somewhere along the way.
        targets = [
            s.domain
            for s in world.websites
            if s.reachable
            and s.redirect_to is None
            and "doubleclick.net" in s.embedded
        ][:12]
        probe = RepeatedVisitProbe(
            world, targets, interval_seconds=3600, rounds=48
        )
        return probe.run()

    def test_series_shapes(self, series):
        assert series
        for item in series:
            assert len(item.called) == len(item.timestamps) == 48

    def test_doubleclick_alternates(self, series, world):
        findings = detect_alternation(
            [s for s in series if s.caller == "doubleclick.net"]
        )
        assert findings
        # With a 6h period sampled hourly, ON/OFF runs are long and
        # consistent; at least one pair must be flagged alternating.
        assert any(f.alternating for f in findings)

    def test_alternating_runs_are_long(self, series):
        for item in series:
            if item.caller != "doubleclick.net":
                continue
            runs = item.runs()
            if len(runs) >= 3:
                inner = runs[1:-1]
                assert all(length >= 2 for _, length in inner)

    def test_non_alternating_cp_stable(self, series):
        # criteo alternates too (configured); casalemedia does not — any
        # casalemedia series must be a single ON run.
        for item in series:
            if item.caller == "casalemedia.com":
                assert len(item.runs()) == 1

    def test_validation(self, world):
        with pytest.raises(ValueError):
            RepeatedVisitProbe(world, [], interval_seconds=0)
        with pytest.raises(ValueError):
            RepeatedVisitProbe(world, [], rounds=0)


class TestDetector:
    def test_always_on(self):
        finding = detect_alternation(
            [ObservationSeries("c", "s", tuple(range(10)), (True,) * 10)]
        )[0]
        assert finding.always_on
        assert finding.on_fraction == 1.0

    def test_alternating_flag(self):
        pattern = (True,) * 6 + (False,) * 6 + (True,) * 6
        finding = detect_alternation(
            [ObservationSeries("c", "s", tuple(range(18)), pattern)]
        )[0]
        assert finding.alternating
        assert not finding.always_on

    def test_flapping_not_alternating(self):
        pattern = (True, False) * 9
        finding = detect_alternation(
            [ObservationSeries("c", "s", tuple(range(18)), pattern)],
            min_run_length=2,
        )[0]
        assert not finding.alternating

    def test_on_fraction(self):
        pattern = (True,) * 5 + (False,) * 15
        finding = detect_alternation(
            [ObservationSeries("c", "s", tuple(range(20)), pattern)]
        )[0]
        assert finding.on_fraction == pytest.approx(0.25)
