"""Property-based tests (hypothesis) on core data structures and invariants."""

import string

from hypothesis import given, settings, strategies as st

from repro.attestation.allowlist import (
    AllowList,
    AllowListCorruptError,
    parse_allowlist,
)
from repro.browser.topics.history import BrowsingHistory
from repro.browser.topics.selection import EPOCHS_PER_CALL, EpochTopicsSelector
from repro.crawler.dataset import CallRecord, VisitRecord
from repro.taxonomy.classifier import MAX_TOPICS_PER_SITE, SiteClassifier
from repro.util.psl import etld_plus_one, second_level_name
from repro.util.rng import RngStream, derive_seed
from repro.util.text import contains_keyword, stable_digest, tokens
from repro.util.timeline import EPOCH_DURATION, epoch_index
from repro.util.urls import parse_url
from repro.web.thirdparty import TopicsPolicy
from repro.web.tranco import TrancoList

# -- strategies -----------------------------------------------------------------

label = st.text(alphabet=string.ascii_lowercase + string.digits, min_size=1, max_size=8)
hostname = st.lists(label, min_size=1, max_size=4).map(".".join)
domain = st.lists(label, min_size=2, max_size=3).map(".".join)


class TestPslProperties:
    @given(hostname)
    def test_registrable_is_idempotent(self, host):
        once = etld_plus_one(host)
        assert etld_plus_one(once) == once

    @given(hostname)
    def test_registrable_is_suffix_of_host(self, host):
        registrable = etld_plus_one(host)
        assert host.lower().endswith(registrable)

    @given(hostname)
    def test_second_level_is_first_label_of_registrable(self, host):
        assert second_level_name(host) == etld_plus_one(host).split(".")[0]

    @given(hostname, label)
    def test_subdomain_preserves_registrable(self, host, sub):
        assert etld_plus_one(f"{sub}.{host}") in (
            etld_plus_one(host),
            f"{sub}.{host}".lower(),  # host was itself a bare suffix
        )


class TestUrlProperties:
    @given(hostname, st.sampled_from(["/", "/a", "/a/b.js"]), st.sampled_from(["", "x=1"]))
    def test_round_trip(self, host, path, query):
        raw = f"https://{host}{path}" + (f"?{query}" if query else "")
        assert str(parse_url(raw)) == raw

    @given(hostname)
    def test_origin_scheme_host(self, host):
        assert parse_url(f"https://{host}/p").origin == f"https://{host}"


class TestRngProperties:
    @given(st.integers(), st.lists(label, max_size=3))
    def test_derive_seed_deterministic(self, root, names):
        assert derive_seed(root, *names) == derive_seed(root, *names)

    @given(st.integers(0, 10**6), label)
    def test_stream_reproducible(self, seed, name):
        a = RngStream(seed, name)
        b = RngStream(seed, name)
        assert [a.random() for _ in range(5)] == [b.random() for _ in range(5)]

    @given(st.floats(0.0, 1.0))
    def test_bernoulli_returns_bool(self, probability):
        assert RngStream(1, "p").bernoulli(probability) in (True, False)

    @given(st.lists(st.floats(0.01, 10.0), min_size=1, max_size=20), st.integers(1, 50))
    def test_weighted_indices_bounds(self, weights, count):
        from itertools import accumulate

        cumulative = list(accumulate(weights))
        picks = RngStream(1, "wi").weighted_indices(cumulative, count)
        assert len(picks) == count
        assert all(0 <= index < len(weights) for index in picks)


class TestTextProperties:
    @given(st.text(max_size=100))
    def test_tokens_lowercase_alnum(self, text):
        for token in tokens(text):
            assert token == token.lower()
            assert token.isalnum()

    @given(st.lists(label, min_size=1, max_size=6), st.integers(0, 5))
    def test_keyword_found_when_present(self, words, pick):
        keyword = words[pick % len(words)]
        text = " ".join(words)
        assert contains_keyword(text, [keyword]) == keyword

    @given(st.text(max_size=30), st.text(max_size=30))
    def test_stable_digest_range(self, a, b):
        assert 0 <= stable_digest(a, b) < 2**64


class TestTimelineProperties:
    @given(st.integers(-10**9, 10**9))
    def test_epoch_contains_timestamp(self, at):
        epoch = epoch_index(at)
        assert epoch * EPOCH_DURATION <= at < (epoch + 1) * EPOCH_DURATION


class TestAllowListProperties:
    @given(st.sets(domain, max_size=30))
    def test_serialize_parse_round_trip(self, domains):
        allowlist = AllowList.of(domains)
        assert parse_allowlist(allowlist.serialize()).domains == allowlist.domains

    @given(st.sets(domain, min_size=1, max_size=10), st.data())
    def test_body_tampering_detected(self, domains, data):
        payload = AllowList.of(domains).serialize()
        lines = payload.splitlines()
        body_start = len(lines[0]) + 1
        position = data.draw(
            st.integers(body_start, len(payload) - 2), label="position"
        )
        original = payload[position]
        replacement = "x" if original != "x" else "y"
        tampered = payload[:position] + replacement + payload[position + 1:]
        try:
            parsed = parse_allowlist(tampered)
        except AllowListCorruptError:
            return  # detected, as required
        # The only acceptable escape is a no-op (same canonical set).
        assert parsed.domains == AllowList.of(domains).domains


class TestPolicyProperties:
    @given(st.floats(0.0, 1.0), st.floats(0.0, 1.0), domain, domain)
    def test_enabled_monotone_in_rate(self, low, high, caller, site):
        if low > high:
            low, high = high, low
        policy_low = TopicsPolicy(enabled_rate=low)
        policy_high = TopicsPolicy(enabled_rate=high)
        if policy_low.is_enabled(caller, site, 0):
            assert policy_high.is_enabled(caller, site, 0)

    @given(st.floats(0.01, 1.0), domain, domain, st.floats(0.1, 5.0))
    def test_before_monotone_in_multiplier(self, rate, caller, site, mult):
        policy = TopicsPolicy(enabled_rate=0.5, before_rate=rate)
        if policy.calls_in_before_accept(caller, site, mult):
            assert policy.calls_in_before_accept(caller, site, mult * 2)

    @given(domain, domain)
    def test_call_type_in_weights(self, caller, site):
        policy = TopicsPolicy(enabled_rate=1.0)
        assert policy.pick_call_type(caller, site) in policy.call_type_weights


class TestClassifierProperties:
    @given(hostname)
    @settings(max_examples=50)
    def test_classifier_total_and_bounded(self, host):
        classifier = SiteClassifier()
        topics = classifier.classify(host)
        assert 1 <= len(topics) <= MAX_TOPICS_PER_SITE
        assert len(set(topics)) == len(topics)
        assert all(t in classifier.taxonomy for t in topics)


class TestSelectorProperties:
    @given(
        st.lists(st.tuples(domain, st.integers(0, 2)), min_size=1, max_size=15),
        domain,
    )
    @settings(max_examples=30, deadline=None)
    def test_answers_valid_and_bounded(self, observations, caller):
        history = BrowsingHistory()
        selector = EpochTopicsSelector(SiteClassifier(), user_seed=1)
        for site, epoch in observations:
            history.record_observation(site, caller, epoch * EPOCH_DURATION)
        topics = selector.topics_for_caller(history, caller, 3)
        assert len(topics) <= EPOCHS_PER_CALL
        ids = [t.topic_id for t in topics]
        assert len(set(ids)) == len(ids)
        assert all(t.topic_id in selector._taxonomy for t in topics)


class TestTrancoProperties:
    @given(st.lists(domain, min_size=1, max_size=40, unique=True))
    def test_csv_round_trip(self, tmp_path_factory, domains):
        path = tmp_path_factory.mktemp("tranco") / "list.csv"
        ranking = TrancoList.of(domains)
        ranking.to_csv(path)
        assert TrancoList.from_csv(path).domains == ranking.domains


class TestDatasetProperties:
    @given(
        domain,
        st.lists(domain, max_size=5),
        st.integers(1, 10**6),
        st.booleans(),
        st.sampled_from(["javascript", "fetch", "iframe"]),
    )
    def test_visit_record_json_round_trip(
        self, site, parties, rank, accepted, call_type
    ):
        record = VisitRecord(
            rank=rank,
            domain=site,
            final_domain=site,
            url=f"https://www.{site}/",
            final_url=f"https://www.{site}/",
            phase="before-accept",
            banner_present=accepted,
            banner_language="en" if accepted else None,
            accept_clicked=accepted,
            cmp=None,
            third_parties=tuple(parties),
            calls=(
                CallRecord(
                    caller=site,
                    caller_host=f"www.{site}",
                    site=site,
                    call_type=call_type,
                    at=0,
                    decision="allowed-database-corrupt",
                    topics_returned=0,
                ),
            ),
        )
        assert VisitRecord.from_json(record.to_json()) == record
