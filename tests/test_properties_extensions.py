"""Property-based tests for the extension subsystems."""

import string

from hypothesis import given, settings, strategies as st

from repro.adserver.inventory import Inventory
from repro.adserver.server import AdServer
from repro.browser.cookies import CookieJar, CookieTracker
from repro.browser.topics.headers import format_topics_header, parse_topics_header
from repro.browser.topics.types import Topic
from repro.privacy.attack import SequenceMatcher, TopicOverlapMatcher, link_profiles
from repro.taxonomy.tree import load_default_taxonomy

label = st.text(alphabet=string.ascii_lowercase, min_size=1, max_size=8)
domain = st.lists(label, min_size=2, max_size=3).map(".".join)

_TAXONOMY = load_default_taxonomy()
_ALL_IDS = _TAXONOMY.all_ids()


class TestHeaderProperties:
    @given(st.lists(st.sampled_from(_ALL_IDS), max_size=3, unique=True))
    def test_round_trip_preserves_ids(self, topic_ids):
        topics = [
            Topic(topic_id=t, taxonomy_version="2", model_version="1")
            for t in topic_ids
        ]
        groups = parse_topics_header(format_topics_header(topics))
        parsed_ids = sorted(i for g in groups for i in g.topic_ids)
        assert parsed_ids == sorted(topic_ids)

    @given(st.lists(st.sampled_from(_ALL_IDS), max_size=3))
    def test_header_never_empty(self, topic_ids):
        topics = [
            Topic(topic_id=t, taxonomy_version="2", model_version="1")
            for t in topic_ids
        ]
        header = format_topics_header(topics)
        assert header  # padding guarantees non-emptiness


class TestCookieProperties:
    @given(domain, domain, st.booleans())
    def test_jar_returns_what_was_set(self, setter, page, enabled):
        jar = CookieJar(third_party_cookies_enabled=enabled)
        stored = jar.set_cookie(setter, page, "k", "v", now=0)
        fetched = jar.get_cookie(setter, page, "k")
        if stored:
            assert fetched is not None and fetched.value == "v"
        else:
            assert fetched is None

    @given(domain, st.integers(0, 10**6))
    def test_tracker_identifier_stable(self, caller, seed):
        tracker = CookieTracker(CookieJar(), profile_seed=seed)
        first = tracker.track_impression(caller, "page-a.example", 0)
        second = tracker.track_impression(caller, "page-b.example", 1)
        assert first == second


class TestAttackProperties:
    @given(
        st.lists(
            st.lists(
                st.tuples(st.sampled_from(_ALL_IDS[:50])), min_size=1, max_size=3
            ),
            min_size=1,
            max_size=8,
        )
    )
    @settings(max_examples=40)
    def test_linkage_ranks_in_range(self, views):
        result = link_profiles(views, views, SequenceMatcher())
        assert all(1 <= rank <= len(views) for rank in result.true_match_ranks)
        assert 0.0 <= result.accuracy_top1 <= 1.0

    @given(
        st.lists(st.tuples(st.sampled_from(_ALL_IDS[:50])), min_size=1, max_size=4)
    )
    def test_overlap_self_similarity_is_max(self, view):
        matcher = TopicOverlapMatcher()
        self_score = matcher.score(view, view)
        assert self_score == 1.0


class TestAdServerProperties:
    _inventory = Inventory.generate(_TAXONOMY, seed=2)

    @given(st.lists(st.sampled_from(_ALL_IDS), min_size=0, max_size=3))
    @settings(max_examples=60)
    def test_server_always_serves(self, topic_ids):
        server = AdServer(self._inventory)
        topics = [
            Topic(topic_id=t, taxonomy_version="2", model_version="1")
            for t in topic_ids
        ]
        response = server.provide_ad_for_topics(topics)
        assert response.campaign.cpm > 0
        if response.targeted:
            # The served campaign's category matches a signalled topic.
            target_root = _TAXONOMY.root_of(response.campaign.target_topic)
            signal_roots = {_TAXONOMY.root_of(t).topic_id for t in topic_ids}
            assert target_root.topic_id in signal_roots

    @given(st.sampled_from(_ALL_IDS))
    def test_matching_targets_cover_requested_topic(self, topic_id):
        for campaign in self._inventory.matching(topic_id):
            covered = {topic_id} | {
                node.topic_id for node in _TAXONOMY.ancestors(topic_id)
            }
            assert campaign.target_topic in covered
