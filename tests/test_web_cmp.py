"""Unit tests for the CMP catalogue and Wappalyzer-style detection."""

import pytest

from repro.web.cmp import CMP_CATALOGUE, CmpCatalogue, CmpProvider


class TestCatalogue:
    def test_figure7_cmps_present(self):
        names = CmpCatalogue().names()
        assert names == [
            "OneTrust", "HubSpot", "LiveRamp", "Cookiebot", "TrustArc",
            "Didomi", "Sourcepoint", "Osano", "Iubenda", "CookieYes",
            "Usercentrics", "CookieScript", "Civic", "Cookie Information",
            "SFBX",
        ]

    def test_onetrust_most_popular(self):
        catalogue = CmpCatalogue()
        onetrust = catalogue.get("OneTrust")
        assert all(
            onetrust.market_weight >= provider.market_weight
            for provider in catalogue.providers
        )

    def test_hubspot_and_liveramp_leak_most(self):
        # The paper singles these two out (Figure 7 discussion).
        catalogue = CmpCatalogue()
        ranked = sorted(
            catalogue.providers, key=lambda p: -p.preconsent_leak_rate
        )
        assert {ranked[0].name, ranked[1].name} == {"HubSpot", "LiveRamp"}

    def test_get_unknown(self):
        with pytest.raises(KeyError):
            CmpCatalogue().get("NotACmp")

    def test_duplicate_names_rejected(self):
        dupe = CMP_CATALOGUE + (CmpProvider("OneTrust", "other.com", 1, 0.1),)
        with pytest.raises(ValueError):
            CmpCatalogue(dupe)

    def test_duplicate_domains_rejected(self):
        dupe = CMP_CATALOGUE + (CmpProvider("Clone", "onetrust.com", 1, 0.1),)
        with pytest.raises(ValueError):
            CmpCatalogue(dupe)


class TestDetection:
    def test_detects_by_served_domain(self):
        catalogue = CmpCatalogue()
        hosts = {"www.site.com", "cdn.onetrust.com", "static.doubleclick.net"}
        assert catalogue.detect_from_domains(hosts) == "OneTrust"

    def test_subdomain_resolution(self):
        catalogue = CmpCatalogue()
        assert catalogue.detect_from_domains({"consent.cookiebot.com"}) == "Cookiebot"

    def test_no_cmp(self):
        catalogue = CmpCatalogue()
        assert catalogue.detect_from_domains({"www.site.com", "cdn.jsdelivr.net"}) is None

    def test_catalogue_order_breaks_ties(self):
        catalogue = CmpCatalogue()
        hosts = {"cdn.onetrust.com", "x.hubspot.com"}
        assert catalogue.detect_from_domains(hosts) == "OneTrust"

    def test_empty_input(self):
        assert CmpCatalogue().detect_from_domains(set()) is None
