"""Visit-plan fast path: compiled plans ≡ the page-walk reference.

``VisitPlanner._compile_pair`` builds both consent variants of a site's
plan directly from ``Website`` fields; ``VisitPlanner._build`` is the
retained reference implementation that materialises the page and walks
its tags.  These tests pin the two equal for every site of a generated
world (both script-origin modes, both consent states) and pin the
fast-path campaign byte-equal to the instrumented legacy-path campaign,
so neither builder can drift silently.
"""

import pytest

from repro.browser.script import ScriptOriginMode
from repro.crawler.campaign import CrawlCampaign
from repro.obs import MetricsRegistry, Tracer
from repro.web.config import WorldConfig
from repro.web.generator import WebGenerator


@pytest.fixture(scope="module")
def world():
    return WebGenerator(WorldConfig.small(300, seed=11)).generate()


class TestCompileMatchesPageWalk:
    @pytest.mark.parametrize("mode", list(ScriptOriginMode))
    def test_every_site_both_consents(self, world, mode):
        planner = world.visit_planner(mode)
        domains = list(world.tranco.domains) + sorted(world.shadow_sites)
        mismatches = []
        for domain in domains:
            for consent in (False, True):
                compiled = planner.plan_for(domain, consent)
                walked = planner._build(domain, consent)
                if compiled != walked:
                    mismatches.append((domain, consent))
        assert mismatches == []

    def test_redirect_plans_share_target_surface(self, world):
        planner = world.visit_planner(ScriptOriginMode.EMBEDDER)
        redirecting = [
            site
            for site in (world.site(d) for d in world.tranco.domains)
            if site.redirect_to is not None
            and world.site(site.redirect_to).redirect_to is None
        ]
        assert redirecting, "world should contain single-hop redirects"
        for site in redirecting:
            plan = planner.plan_for(site.domain, False)
            target = planner.plan_for(site.redirect_to, False)
            assert plan.url == f"https://www.{site.domain}/"
            assert plan.final_url == target.final_url
            assert plan.page_domain == target.page_domain
            assert plan.ops == target.ops
            assert plan.third_parties == target.third_parties


class TestFastPathCampaignEquivalence:
    def test_fast_equals_instrumented_legacy(self):
        world = WebGenerator(WorldConfig.small(150, seed=23)).generate()
        fast = CrawlCampaign(world, corrupt_allowlist=True).run()
        legacy = CrawlCampaign(
            world,
            corrupt_allowlist=True,
            tracer=Tracer(),
            metrics=MetricsRegistry(),
        ).run()

        assert fast.d_ba.records == legacy.d_ba.records
        assert fast.d_aa.records == legacy.d_aa.records
        assert fast.report.ok == legacy.report.ok
        assert fast.report.failed == legacy.report.failed
        assert fast.report.accepted == legacy.report.accepted
        assert fast.report.banners_seen == legacy.report.banners_seen
        assert fast.report.failure_kinds == legacy.report.failure_kinds
        assert fast.report.finished_at == legacy.report.finished_at
        assert fast.allowed_domains == legacy.allowed_domains
        assert (
            fast.survey.attested_domains() == legacy.survey.attested_domains()
        )
