"""End-to-end crash/resume tests for :class:`ResumableCrawl`.

The acceptance bar for the checkpoint layer: a campaign whose shards are
killed at injected visit offsets — including across separate campaign
*processes* — must produce datasets **byte-identical** to an
uninterrupted run, with the checkpoint and retry activity visible in
spans, metrics and the event trace.
"""

from __future__ import annotations

import pytest

from repro.crawler.checkpoint import CheckpointStore, RetryPolicy
from repro.crawler.parallel import ShardedCrawl
from repro.crawler.resumable import ResumableCrawl, ShardFailedError
from repro.obs import EventKind, MetricsRegistry, SpanRecorder, Tracer
from repro.obs.spans import (
    SPAN_CHECKPOINT_RESTORE,
    SPAN_CHECKPOINT_WRITE,
    SPAN_SHARD_RETRY,
)
from repro.web.config import WorldConfig
from repro.web.generator import WebGenerator

RESUME_SITES = 600
SHARDS = 3
EVERY = 50


@pytest.fixture(scope="module")
def resume_world():
    return WebGenerator(WorldConfig.small(RESUME_SITES, seed=3)).generate()


@pytest.fixture(scope="module")
def baseline(resume_world):
    """The uninterrupted campaign every recovery scenario must match."""
    return ShardedCrawl(resume_world, shard_count=SHARDS).run()


def _jsonl(dataset) -> str:
    return "\n".join(record.to_json() for record in dataset.records)


def _crash_shard_at(shard_index: int, points: dict[int, int]):
    """Injector killing ``shard_index`` at ``points[attempt]`` (if set)."""

    def injector(shard: int, attempt: int):
        if shard != shard_index:
            return None
        point = points.get(attempt)
        if point is None:
            return None

        def hook(position: int, domain: str) -> None:
            if position == point:
                raise RuntimeError(f"injected crash at visit {position}")

        return hook

    return injector


class TestUninterrupted:
    def test_matches_sharded_crawl(self, resume_world, baseline, tmp_path):
        outcome = ResumableCrawl(
            resume_world, tmp_path, shard_count=SHARDS, checkpoint_every=EVERY
        ).run()
        assert _jsonl(outcome.result.d_ba) == _jsonl(baseline.d_ba)
        assert _jsonl(outcome.result.d_aa) == _jsonl(baseline.d_aa)
        assert outcome.result.report.ok == baseline.report.ok
        assert outcome.retries == () and outcome.partial is None

    def test_checkpoints_written_periodically(self, resume_world, tmp_path):
        ResumableCrawl(
            resume_world, tmp_path, shard_count=SHARDS, checkpoint_every=EVERY
        ).run()
        store = CheckpointStore(tmp_path)
        assert store.shards() == list(range(SHARDS))
        for shard in range(SHARDS):
            latest = store.latest(shard)
            assert latest.complete
            assert latest.visits_done == RESUME_SITES // SHARDS


class TestCrashResume:
    """Shards killed mid-run at ≥2 distinct visit offsets."""

    @pytest.fixture(scope="class")
    def crashed(self, resume_world, tmp_path_factory):
        tracer, metrics, spans = Tracer(), MetricsRegistry(), SpanRecorder()
        outcome = ResumableCrawl(
            resume_world,
            tmp_path_factory.mktemp("crashed"),
            shard_count=SHARDS,
            checkpoint_every=EVERY,
            # Kill shard 1 twice: attempt 1 dies at visit 60 (after the
            # 50-visit checkpoint), attempt 2 at visit 130 (after 100).
            fault_injector=_crash_shard_at(1, {1: 60, 2: 130}),
            tracer=tracer,
            metrics=metrics,
            spans=spans,
        ).run()
        return outcome, tracer, metrics, spans

    def test_datasets_byte_identical(self, crashed, baseline):
        outcome, _, _, _ = crashed
        assert _jsonl(outcome.result.d_ba) == _jsonl(baseline.d_ba)
        assert _jsonl(outcome.result.d_aa) == _jsonl(baseline.d_aa)

    def test_report_identical(self, crashed, baseline):
        outcome, _, _, _ = crashed
        assert outcome.result.report.ok == baseline.report.ok
        assert outcome.result.report.failed == baseline.report.failed
        assert outcome.result.report.accepted == baseline.report.accepted
        assert dict(outcome.result.report.failure_kinds) == dict(
            baseline.report.failure_kinds
        )

    def test_retries_resumed_from_checkpoints(self, crashed):
        outcome, _, _, _ = crashed
        assert [r.resumed_from for r in outcome.retries] == [50, 100]
        assert [r.backoff_seconds for r in outcome.retries] == [30, 60]
        assert outcome.partial is None

    def test_metrics_record_recovery(self, crashed):
        _, _, metrics, _ = crashed
        snapshot = metrics.snapshot()
        assert snapshot.counter_total("shard_retries_total") == 2
        assert snapshot.counter_total("checkpoint_restores_total") == 2
        assert snapshot.counter_total("checkpoint_writes_total") > 0
        assert snapshot.counter_total("shard_backoff_seconds_total") == 90

    def test_trace_records_recovery(self, crashed):
        # Retry records are folded from the surviving attempt, so both
        # retries appear; an attempt's own restore event dies with it if
        # the attempt later crashes (only metrics ride in checkpoints),
        # so exactly the final attempt's restore is visible.
        _, tracer, _, _ = crashed
        kinds = tracer.counts_by_kind()
        assert kinds[EventKind.SHARD_RETRIED.value] == 2
        assert kinds[EventKind.CHECKPOINT_RESTORED.value] >= 1
        assert kinds[EventKind.CHECKPOINT_WRITTEN.value] > 0

    def test_spans_record_recovery(self, crashed):
        _, _, _, spans = crashed
        assert len(spans.spans(SPAN_SHARD_RETRY)) == 2
        assert len(spans.spans(SPAN_CHECKPOINT_RESTORE)) >= 1
        assert len(spans.spans(SPAN_CHECKPOINT_WRITE)) > 0
        retry = spans.spans(SPAN_SHARD_RETRY)[0]
        assert retry.fields["shard"] == 1


class TestProcessKillResume:
    """The whole campaign dies and is re-launched with resume=True."""

    def test_fresh_process_resumes_byte_identical(
        self, resume_world, baseline, tmp_path
    ):
        with pytest.raises(ShardFailedError) as excinfo:
            ResumableCrawl(
                resume_world,
                tmp_path,
                shard_count=SHARDS,
                checkpoint_every=EVERY,
                retry_policy=RetryPolicy(max_retries=0),
                fault_injector=_crash_shard_at(2, {1: 120}),
            ).run()
        assert excinfo.value.shard_index == 2

        # A brand-new campaign object over the same directory: shards 0/1
        # reload their complete checkpoints, shard 2 resumes from 100.
        metrics = MetricsRegistry()
        outcome = ResumableCrawl(
            resume_world,
            tmp_path,
            shard_count=SHARDS,
            checkpoint_every=EVERY,
            resume=True,
            metrics=metrics,
        ).run()
        assert sorted(outcome.resumed_shards) == [0, 1, 2]
        assert _jsonl(outcome.result.d_ba) == _jsonl(baseline.d_ba)
        assert _jsonl(outcome.result.d_aa) == _jsonl(baseline.d_aa)
        assert metrics.snapshot().counter_total("checkpoint_restores_total") == 3

    def test_crash_before_first_checkpoint_restarts_clean(
        self, resume_world, baseline, tmp_path
    ):
        outcome = ResumableCrawl(
            resume_world,
            tmp_path,
            shard_count=SHARDS,
            checkpoint_every=EVERY,
            fault_injector=_crash_shard_at(0, {1: 10}),
        ).run()
        assert outcome.retries[0].resumed_from == 0
        assert _jsonl(outcome.result.d_ba) == _jsonl(baseline.d_ba)
        assert _jsonl(outcome.result.d_aa) == _jsonl(baseline.d_aa)


class TestAllowPartial:
    def test_persistent_failure_degrades_gracefully(
        self, resume_world, baseline, tmp_path
    ):
        metrics = MetricsRegistry()
        outcome = ResumableCrawl(
            resume_world,
            tmp_path,
            shard_count=SHARDS,
            checkpoint_every=EVERY,
            retry_policy=RetryPolicy(max_retries=1),
            allow_partial=True,
            # Shard 0 dies at visit 70 on every attempt.
            fault_injector=_crash_shard_at(0, {1: 70, 2: 70, 3: 70}),
            metrics=metrics,
        ).run()
        assert outcome.is_partial
        [missing] = outcome.partial.missing
        # Shard 0 checkpointed through visit 50; global ranks 51..200 gone.
        assert missing.shard_index == 0
        assert (missing.from_rank, missing.to_rank) == (51, 200)
        assert outcome.partial.missing_targets == 150

        # The delivered prefix is still byte-wise a prefix of the truth.
        expected_ba = [
            r for r in baseline.d_ba.records if not 51 <= r.rank <= 200
        ]
        assert _jsonl(outcome.result.d_ba) == "\n".join(
            r.to_json() for r in expected_ba
        )
        snapshot = metrics.snapshot()
        assert snapshot.gauge_value("crawl_missing_targets") == 150
        assert snapshot.gauge_value("crawl_degraded_shards") == 1

    def test_without_allow_partial_campaign_fails(self, resume_world, tmp_path):
        with pytest.raises(ShardFailedError):
            ResumableCrawl(
                resume_world,
                tmp_path,
                shard_count=SHARDS,
                checkpoint_every=EVERY,
                retry_policy=RetryPolicy(max_retries=1),
                fault_injector=_crash_shard_at(0, {1: 70, 2: 70}),
            ).run()


class TestFingerprintGuard:
    def test_resume_rejects_different_campaign(self, resume_world, tmp_path):
        ResumableCrawl(
            resume_world, tmp_path, shard_count=SHARDS, checkpoint_every=EVERY
        ).run()
        from repro.crawler.checkpoint import CheckpointError

        with pytest.raises(CheckpointError, match="different campaign"):
            ResumableCrawl(
                resume_world,
                tmp_path,
                shard_count=SHARDS + 1,  # different layout, same directory
                checkpoint_every=EVERY,
                resume=True,
            ).run()
