"""Tests for the failure taxonomy, transient recovery and retries."""

import pytest

from repro.browser.browser import Browser
from repro.browser.failures import (
    FailureKind,
    breakdown,
    failure_kind_for,
    render_breakdown,
)
from repro.crawler.campaign import CrawlCampaign


class TestFailureKinds:
    def test_transient_is_timeout(self):
        assert failure_kind_for("x.com", transient=True) is (
            FailureKind.CONNECTION_TIMEOUT
        )
        assert FailureKind.CONNECTION_TIMEOUT.is_transient

    def test_permanent_kinds_stable(self):
        kind = failure_kind_for("x.com", transient=False)
        assert kind is failure_kind_for("x.com", transient=False)
        assert not kind.is_transient

    def test_permanent_distribution(self):
        kinds = [
            failure_kind_for(f"site{i}.com", transient=False) for i in range(2000)
        ]
        dns_share = sum(1 for k in kinds if k is FailureKind.DNS_RESOLUTION) / len(
            kinds
        )
        assert 0.5 < dns_share < 0.7  # configured at 60%
        assert FailureKind.CONNECTION_TIMEOUT not in kinds

    def test_breakdown_and_render(self):
        counts = breakdown(["a", "a", "b"])
        assert counts == {"a": 2, "b": 1}
        text = render_breakdown(counts)
        assert "failures: 3" in text and "(67%)" in text


class TestTransientRecovery:
    def test_transient_site_recovers_on_second_attempt(self, world):
        site = next(
            s for s in world.websites if not s.reachable and s.transient_failure
        )
        browser = Browser(world)
        first = browser.visit(site.domain)
        assert not first.ok
        assert first.error == FailureKind.CONNECTION_TIMEOUT.value
        second = browser.visit(site.domain)
        assert second.ok

    def test_permanent_site_never_recovers(self, world):
        site = next(
            s for s in world.websites if not s.reachable and not s.transient_failure
        )
        browser = Browser(world)
        for _ in range(3):
            assert not browser.visit(site.domain).ok


class TestCampaignRetries:
    def test_retries_recover_transients(self, world, crawl):
        with_retry = CrawlCampaign(world, limit=2_000, retries=1).run()
        without = CrawlCampaign(world, limit=2_000).run()
        assert with_retry.report.recovered > 0
        assert with_retry.report.ok == without.report.ok + (
            with_retry.report.recovered
        )

    def test_no_retry_records_timeouts(self, crawl):
        kinds = crawl.report.failure_kinds
        assert FailureKind.CONNECTION_TIMEOUT.value in kinds
        assert FailureKind.DNS_RESOLUTION.value in kinds
        assert sum(kinds.values()) == crawl.report.failed

    def test_retry_removes_recovered_from_breakdown(self, world):
        result = CrawlCampaign(world, limit=2_000, retries=1).run()
        # After one retry, every remaining timeout is a permanently slow
        # host; transient ones moved to ok.
        assert result.report.retried >= result.report.recovered

    def test_negative_retries_rejected(self, world):
        with pytest.raises(ValueError):
            CrawlCampaign(world, retries=-1)
