"""Root pytest conftest: per-test timeout watchdog, with or without plugins.

The repo sets ``timeout = 300`` in ``pyproject.toml`` so a hung test —
an asyncio service test deadlocking on a queue, a socket read that never
returns — can never stall a CI run.  That ini key belongs to the
``pytest-timeout`` plugin; CI installs it.  Environments without the
plugin (the key would otherwise be an unknown-ini warning and a silent
no-op) get a minimal fallback here: a ``SIGALRM`` alarm around each test
call, main-thread only, POSIX only.  The fallback intentionally
implements just what this repo needs — a whole-test deadline raising a
clear failure — not the plugin's full surface.

This must be the *root* conftest: ``pytest_addoption`` (which registers
the ini key) only runs from initial conftests, and ``tests/conftest.py``
is not loaded for ``pytest benchmarks/...`` invocations.
"""

from __future__ import annotations

import signal
import threading

import pytest

try:
    import pytest_timeout  # noqa: F401

    _HAVE_PLUGIN = True
except ImportError:
    _HAVE_PLUGIN = False


if not _HAVE_PLUGIN:

    def pytest_addoption(parser: pytest.Parser) -> None:
        parser.addini(
            "timeout",
            "per-test timeout in seconds (pytest-timeout fallback)",
            default="0",
        )

    def pytest_configure(config: pytest.Config) -> None:
        config.addinivalue_line(
            "markers",
            "timeout(seconds): override the per-test timeout "
            "(pytest-timeout fallback)",
        )

    def _timeout_for(item: pytest.Item) -> float:
        marker = item.get_closest_marker("timeout")
        if marker is not None and marker.args:
            return float(marker.args[0])
        try:
            return float(item.config.getini("timeout") or 0)
        except (TypeError, ValueError):
            return 0.0

    @pytest.hookimpl(wrapper=True)
    def pytest_runtest_call(item: pytest.Item):
        seconds = _timeout_for(item)
        use_alarm = (
            seconds > 0
            and hasattr(signal, "SIGALRM")
            and threading.current_thread() is threading.main_thread()
        )
        if not use_alarm:
            return (yield)

        def on_alarm(signum, frame):  # noqa: ARG001 — signal handler shape
            raise TimeoutError(
                f"test exceeded the {seconds:.0f}s timeout "
                "(pytest-timeout fallback watchdog)"
            )

        previous = signal.signal(signal.SIGALRM, on_alarm)
        signal.alarm(int(seconds))
        try:
            return (yield)
        finally:
            signal.alarm(0)
            signal.signal(signal.SIGALRM, previous)
