"""Legacy setuptools shim.

The project metadata lives in ``pyproject.toml``; this file only exists so
``pip install -e .`` works on environments whose setuptools predates PEP 660
editable wheels (no ``wheel`` package available offline).
"""

from setuptools import setup

setup()
