# Convenience targets for the Topics API reproduction.

PY ?= python3

.PHONY: install test lint validate report bench bench-small bench-smoke bench-obs bench-spans bench-parallel bench-columnar bench-reid bench-service sweep-smoke serve-smoke ci study experiments examples clean

install:
	$(PY) setup.py develop

test:
	$(PY) -m pytest tests/

# Ruff is optional locally (no network deps baked in); CI always runs it.
lint:
	@if command -v ruff >/dev/null 2>&1; then \
		ruff check src tests benchmarks; \
	else \
		echo "ruff not installed; skipping lint (CI runs it)"; \
	fi

bench:
	$(PY) -m pytest benchmarks/ --benchmark-only

# Reduced-scale benches for quick iteration.
bench-small:
	REPRO_BENCH_SITES=6000 $(PY) -m pytest benchmarks/ --benchmark-only

# Tracing overhead trajectory: crawl throughput with instrumentation
# off (the no-op default) and on, side by side.
bench-obs:
	REPRO_BENCH_SITES=6000 $(PY) -m pytest benchmarks/bench_crawl_throughput.py --benchmark-only

# Span-recording overhead: NULL_RECORDER baseline vs a live SpanRecorder.
bench-spans:
	REPRO_BENCH_SITES=6000 $(PY) -m pytest benchmarks/bench_crawl_throughput.py -k spans --benchmark-only

# Execution-backend matrix: serial vs thread vs process at 1/2/4/8
# workers, with per-cell speedup over the sequential protocol.
bench-parallel:
	REPRO_BENCH_SITES=6000 $(PY) -m pytest benchmarks/bench_parallel_crawl.py --benchmark-only

# The columnar data plane's acceptance pair: crawl throughput and the
# backend matrix at the scale the PR baselines were measured
# (REPRO_BENCH_SITES=6000), recording visits/sec into the JSON artifact.
# The regression gate runs at the smoke scale (bench-smoke), where the
# committed baseline was measured.
bench-columnar:
	REPRO_BENCH_SITES=6000 $(PY) -m pytest \
		benchmarks/bench_crawl_throughput.py::test_crawl_throughput \
		benchmarks/bench_parallel_crawl.py \
		--benchmark-only \
		--benchmark-json=bench-columnar.json

# The population data plane's acceptance pair: study throughput and the
# scaling curve at the scale the PR baselines were measured
# (1,000 users), recording reid_users_per_second into the JSON artifact.
bench-reid:
	REPRO_BENCH_REID_USERS=1000 $(PY) -m pytest \
		benchmarks/bench_reidentification.py::test_reid_throughput \
		benchmarks/bench_reidentification.py::test_reid_scaling \
		--benchmark-only \
		--benchmark-json=bench-reid.json

# The crawl service's acceptance pair: streamed submit-to-done
# throughput vs the batch plane, plus submit-to-first-event latency,
# recording service_visits_per_second into the JSON artifact.
bench-service:
	REPRO_BENCH_SITES=6000 $(PY) -m pytest \
		benchmarks/bench_service.py \
		--benchmark-only \
		--benchmark-json=bench-service.json

# The reduced-scale benchmark job CI runs on every push: the bench run
# records visits/sec, reid users/sec, and service visits/sec into the
# JSON artifact, and the regression gate fails on a >30% drop versus
# the committed baseline.
bench-smoke:
	REPRO_BENCH_SITES=2000 REPRO_BENCH_REID_USERS=500 \
	REPRO_BENCH_REID_SCALES=150,300 $(PY) -m pytest \
		benchmarks/bench_crawl_throughput.py \
		benchmarks/bench_parallel_crawl.py \
		benchmarks/bench_checkpoint.py \
		benchmarks/bench_reidentification.py::test_reid_throughput \
		benchmarks/bench_reidentification.py::test_reid_scaling \
		benchmarks/bench_service.py \
		--benchmark-only \
		--benchmark-json=bench-smoke.json
	$(PY) scripts/check_bench_regression.py bench-smoke.json

# Scenario sweep smoke: the CI gate's 2x2 matrix (consent vantage x
# allow-list corruption) on the process backend, audited, then rebuilt
# serially and diffed byte-for-byte (the same run CI's sweep job
# performs).
sweep-smoke:
	rm -rf sweep-smoke-process sweep-smoke-serial
	PYTHONPATH=src $(PY) -m repro sweep ci_smoke \
		--out sweep-smoke-process --backend process
	PYTHONPATH=src $(PY) -m repro validate sweep-smoke-process --sweep
	PYTHONPATH=src $(PY) -m repro sweep ci_smoke \
		--out sweep-smoke-serial --backend serial
	diff -r sweep-smoke-process sweep-smoke-serial

# Crawl service smoke: boot `repro serve`, submit a campaign over the
# Unix socket and stream it to completion, run the same spec through
# batch `repro crawl`, and require the two archives to be
# byte-identical (the same run CI's service job performs).
serve-smoke:
	rm -rf serve-smoke-data serve-smoke-batch
	set -e; \
	PYTHONPATH=src $(PY) -m repro serve --data-dir serve-smoke-data \
		--backend serial & \
	SERVE_PID=$$!; \
	trap 'kill $$SERVE_PID 2>/dev/null || true' EXIT; \
	for _ in $$(seq 1 100); do \
		[ -S serve-smoke-data/service.sock ] && break; sleep 0.2; \
	done; \
	[ -S serve-smoke-data/service.sock ]; \
	PYTHONPATH=src $(PY) -m repro submit --data-dir serve-smoke-data \
		--sites 1000 --seed 1 --shards 4 --backend serial \
		--checkpoint-every 100 --watch; \
	PYTHONPATH=src $(PY) -m repro crawl --sites 1000 --seed 1 \
		--shards 4 --backend serial --out serve-smoke-batch/archive \
		--checkpoint-dir serve-smoke-batch/checkpoints \
		--checkpoint-every 100; \
	diff -r serve-smoke-data/jobs/job-000001/archive \
		serve-smoke-batch/archive; \
	PYTHONPATH=src $(PY) -m repro shutdown --data-dir serve-smoke-data; \
	wait $$SERVE_PID

# Cross-artifact validation: the metamorphic relation suite at reduced
# scale (the same run CI's validate job performs).
validate:
	PYTHONPATH=src $(PY) -m repro validate --metamorphic \
		--sites 500 --shard-counts 1,2,3,5 --backends serial,thread,process

# Report portal: crawl a reduced-scale instrumented campaign, render
# the static HTML site, and verify it is self-contained (the same run
# CI's report job performs).
report:
	PYTHONPATH=src $(PY) -m repro crawl --sites 1000 --out report-archive \
		--shards 4 --checkpoint-dir report-archive/checkpoints \
		--checkpoint-every 100 \
		--trace-out report-archive/trace.jsonl \
		--metrics-out report-archive/metrics.json \
		--span-out report-archive/spans.jsonl
	PYTHONPATH=src $(PY) -m repro report report-archive
	$(PY) scripts/check_report_links.py report-archive/report

# Mirror of .github/workflows/ci.yml: lint, tier-1 suite, bench smoke,
# scenario sweep gate, crawl service smoke, metamorphic validation.
ci: lint
	PYTHONPATH=src $(PY) -m pytest -x -q
	PYTHONPATH=src $(MAKE) bench-smoke
	$(MAKE) sweep-smoke
	$(MAKE) serve-smoke
	$(MAKE) validate

study:
	$(PY) -m repro study

experiments:
	$(PY) scripts/gen_experiments.py

examples:
	$(PY) examples/quickstart.py 3000
	$(PY) examples/topics_api_demo.py
	$(PY) examples/anomalous_gtm.py
	$(PY) examples/allowlist_bug.py
	$(PY) examples/consent_audit.py 3000
	$(PY) examples/reidentification.py 40
	$(PY) examples/longitudinal_monitor.py 3000
	$(PY) examples/ad_targeting.py 40
	$(PY) examples/full_study.py 3000
	$(PY) examples/profile_crawl.py 2000

clean:
	find . -name __pycache__ -type d -exec rm -rf {} +
	rm -rf .pytest_cache .hypothesis src/repro.egg-info
	rm -rf sweep-smoke-process sweep-smoke-serial
	rm -rf serve-smoke-data serve-smoke-batch
