#!/usr/bin/env python3
"""Verify a rendered report portal is genuinely self-contained.

Walks every HTML file in the site directory, collects each ``href`` and
``src``, and fails the run when any reference either points at an
external URL (the portal promises zero network fetches) or names a file
that does not resolve inside the site directory.  Fragment-only links
(``#section``) and ``data:`` URIs are allowed.

    python scripts/check_report_links.py <site-dir>
"""

from __future__ import annotations

import argparse
import sys
from html.parser import HTMLParser
from pathlib import Path
from urllib.parse import urlparse

#: Schemes that imply a network fetch and therefore fail the check.
_EXTERNAL_SCHEMES = ("http", "https", "ftp", "//")

#: Attributes that reference other resources.
_REF_ATTRS = ("href", "src", "xlink:href", "poster", "data")


class _RefCollector(HTMLParser):
    """Collects every resource reference in one HTML document."""

    def __init__(self) -> None:
        super().__init__()
        self.refs: list[str] = []

    def handle_starttag(self, tag: str, attrs) -> None:
        for name, value in attrs:
            if name in _REF_ATTRS and value:
                self.refs.append(value)


def check_file(path: Path, root: Path) -> list[str]:
    """Problems found in one HTML file (empty list means clean)."""
    collector = _RefCollector()
    collector.feed(path.read_text(encoding="utf-8"))
    problems = []
    for ref in collector.refs:
        if ref.startswith("#") or ref.startswith("data:"):
            continue
        parsed = urlparse(ref)
        if parsed.scheme in _EXTERNAL_SCHEMES or ref.startswith("//"):
            problems.append(f"{path.name}: external reference {ref!r}")
            continue
        if parsed.scheme:  # mailto:, javascript:, anything non-file
            problems.append(f"{path.name}: non-local scheme {ref!r}")
            continue
        target = (path.parent / parsed.path).resolve()
        if not target.is_relative_to(root.resolve()):
            problems.append(f"{path.name}: reference escapes site dir {ref!r}")
        elif not target.exists():
            problems.append(f"{path.name}: broken reference {ref!r}")
    return problems


def check_site(root: str | Path) -> list[str]:
    """All problems across every HTML page under ``root``."""
    root = Path(root)
    pages = sorted(root.rglob("*.html"))
    if not pages:
        return [f"{root}: no HTML pages found"]
    problems = []
    for page in pages:
        problems.extend(check_file(page, root))
    return problems


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("site", type=Path, help="rendered report directory")
    args = parser.parse_args(argv)

    problems = check_site(args.site)
    if problems:
        for problem in problems:
            print(f"error: {problem}", file=sys.stderr)
        return 1
    pages = len(list(Path(args.site).rglob("*.html")))
    print(f"ok: {pages} page(s) self-contained, every reference resolves")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
