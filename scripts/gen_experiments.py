#!/usr/bin/env python3
"""Regenerate EXPERIMENTS.md from a full paper-scale study.

Usage::

    python scripts/gen_experiments.py [site_count] [output_path]
"""

from __future__ import annotations

import sys
import time
from pathlib import Path

from repro.analysis import report as R
from repro.analysis.dataset_stats import render_stats
from repro.browser.topics.types import ApiCallType
from repro.experiments import ExperimentConfig, run_full_study


def code(text: str) -> str:
    return "```\n" + text + "\n```"


def main() -> None:
    site_count = int(sys.argv[1]) if len(sys.argv) > 1 else 50_000
    output = Path(sys.argv[2]) if len(sys.argv) > 2 else Path("EXPERIMENTS.md")

    config = (
        ExperimentConfig.paper_scale()
        if site_count >= 50_000
        else ExperimentConfig.small(site_count)
    )
    started = time.time()
    result = run_full_study(config)
    elapsed = time.time() - started

    lines: list[str] = []
    lines.append("# EXPERIMENTS — paper vs measured\n")
    lines.append(
        f"Full {site_count:,}-site study, seed 1, corrupted allow-list (the\n"
        f"paper's instrumented setup).  One run takes ≈{elapsed:.0f}s single-core.\n"
        "Regenerate any artefact with `pytest benchmarks/ --benchmark-only`,\n"
        "`python examples/full_study.py`, or this file with\n"
        "`python scripts/gen_experiments.py`.\n"
    )

    lines.append("## Summary sheet\n")
    lines.append("| quantity | paper | measured | deviation | within band |")
    lines.append("|---|---:|---:|---:|---|")
    for comparison in result.comparisons():
        description = comparison.description.replace("|", r"\|")
        lines.append(
            f"| {description} | {comparison.paper:g} | {comparison.measured:.4g}"
            f" | {100 * comparison.deviation:+.1f}% |"
            f" {'yes' if comparison.ok else 'NO'} |"
        )
    lines.append("")

    sections = [
        (
            "Section 2.4 — dataset and initial findings",
            "Paper: 50,000 targets → 43,405 OK → 14,719 After-Accept (~30%); "
            "19,534 unique third parties; failures are DNS/connection errors.",
            render_stats(result.stats),
        ),
        (
            "Table 1 — overall status of Topics API usage",
            "Paper: 193 Allowed / 12 unattested / D_AA 47 & 1 & 2,614 / "
            "D_BA 28 & 1,308.",
            R.render_table1(result.table1),
        ),
        (
            "Figure 2 — CP presence vs calls (D_AA)",
            "Paper: google-analytics most pervasive but silent; doubleclick "
            "calls on ~1/3 of its sites; bing silent; criteo/rubicon/"
            "casalemedia heaviest users.",
            R.render_figure2(result.fig2),
        ),
        (
            "Figure 3 — enabled % per CP (A/B splits)",
            "Paper clusters: authorizedvault ~100%, criteo & cpx 75%, yandex "
            "66%, ... doubleclick 33%, postrelease 25%.",
            R.render_figure3(result.fig3),
        ),
        (
            "Figure 5 — questionable calls per CP (D_BA)",
            "Paper: yandex.com first with 611 websites; doubleclick absent.",
            R.render_figure5(result.fig5),
        ),
        (
            "Figure 6 — questionable-call share by TLD region",
            "Paper: yandex concentrated on .ru and absent from .jp; criteo "
            "worldwide; no radical regional trend; EU sites affected too.",
            R.render_figure6(result.fig6),
        ),
        (
            "Figure 7 — CMP probabilities",
            "Paper: bars roughly equal for most CMPs; HubSpot ~3x "
            "over-represented with P(q|HubSpot)=12% (twice the average); "
            "LiveRamp similar.",
            R.render_figure7(result.fig7),
        ),
        (
            "Section 4 — anomalous usage",
            "Paper: 3,450 calls from 2,614 not-Allowed CPs; 72% share the "
            "visited site's second-level domain; remainder same-company or "
            "redirect; all JavaScript; GTM on 95% of affected sites.",
            R.render_anomalous(result.anomalous),
        ),
        (
            "Section 3 — enrolment timeline",
            "Paper: first attestation 2023-06-16; ~a dozen new services per "
            "month until May 2024; the 2024-10-17 enrollment_site migration "
            "is reproduced in benchmarks/bench_enrollment.py.",
            R.render_enrollment(result.enrollment),
        ),
    ]
    for title, context, body in sections:
        lines.append(f"\n## {title}\n")
        lines.append(context + "\n")
        lines.append(code(body))

    lines.append("\n## Headline shares\n")
    lines.append(
        f"- Share of D_AA sites with a legitimate Topics call: "
        f"**{result.sites_with_call_share:.1%}** (paper: 45%, intro: 'one "
        "website every two')."
    )
    lines.append(
        f"- Crawl duration (simulated): "
        f"**{result.crawl.report.duration_seconds / 3600:.1f} hours** "
        "(paper: 'the crawl ends after about one day')."
    )
    lines.append(
        f"- Anomalous calls are **{result.calltype_anomalous.share(ApiCallType.JAVASCRIPT):.0%}"
        f" JavaScript** (paper: all of them); legitimate callers split "
        f"js/fetch/iframe ≈ "
        f"{result.calltype_legit.share(ApiCallType.JAVASCRIPT):.0%}/"
        f"{result.calltype_legit.share(ApiCallType.FETCH):.0%}/"
        f"{result.calltype_legit.share(ApiCallType.IFRAME):.0%}."
    )
    lines.append("""
## Mechanism reproductions (not numeric artefacts)

- **Figure 1** (Topics API operation): `examples/topics_api_demo.py` walks epochs,
  top-5 computation, 3-topic answers, 5% noise and the observed-by filter;
  `examples/ad_targeting.py` completes the loop to the /provide-ad endpoint;
  pinned by `tests/test_topics_selection.py` and `tests/test_topics_manager.py`.
- **Figure 4** (origin mechanism): `examples/anomalous_gtm.py` shows GTM's
  script executing in the root browsing context and calling as the website;
  pinned by `tests/test_browser_context.py` and `tests/test_browser_visits.py`.
- **§2.3 default-allow bug**: corrupted `privacy-sandbox-attestations.dat`
  makes the browser allow every caller; pinned by
  `tests/test_attestation_allowlist.py::TestGating` and exercised as the
  campaign's instrumentation mode.
- **§3 repeated-visit A/B alternation**: `benchmarks/bench_abtest_repeats.py`
  revisits fixed sites hourly and detects consistent ON/OFF runs.

## Ablations (DESIGN.md §5)

- `benchmarks/bench_ablation_allowlist.py` — healthy allow-list ⇒ anomalous usage invisible (0 calls), legitimate usage unchanged.
- `benchmarks/bench_ablation_context.py` — counterfactual script-URL attribution ⇒ per-site anomalous callers collapse onto the GTM/library hosts.
- `benchmarks/bench_ablation_consent.py` — perfectly consent-respecting ecosystem ⇒ Figure 5 reduced to the consent-ignoring callers only.

## Extension studies

- `benchmarks/bench_reidentification.py` — linkage accuracy rises with
  observation epochs and survives the deployed 5% noise (the related-work
  result).
- `benchmarks/bench_cookies_vs_topics.py` — third-party-cookie phase-out
  collapses identifier coverage to ~0; Topics fills each CP's A/B share.
- `benchmarks/bench_targeting.py` — targeting relevance: cookie profile >
  Topics > untargeted (the §3 "business metric").
- `benchmarks/bench_longitudinal.py` — adoption trend snapshots
  (the paper is the 2024-03-30 row).
- `benchmarks/bench_vantage.py` — a US vantage sees far fewer consent
  banners (§6's single-location caveat).
""")

    output.write_text("\n".join(lines), encoding="utf-8")
    print(f"wrote {output} in {elapsed:.1f}s")


if __name__ == "__main__":
    main()
