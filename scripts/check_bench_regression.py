#!/usr/bin/env python3
"""Gate crawl-throughput regressions against a committed baseline.

Reads a ``pytest-benchmark --benchmark-json`` results file, pulls the
``visits_per_second`` figure each crawl benchmark records into its
``extra_info``, and compares it against the committed baseline
(``benchmarks/baseline_visits_per_second.json``).  A benchmark that
drops more than the allowed fraction below its baseline fails the run;
faster-than-baseline results are reported (and can be promoted with
``--update`` after an intentional improvement lands).

CI runners vary in raw speed, so the committed baseline is deliberately
conservative and the threshold is configurable::

    python scripts/check_bench_regression.py bench-results.json
    python scripts/check_bench_regression.py bench-results.json --max-regression 0.5
    python scripts/check_bench_regression.py bench-results.json --update
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

#: Default location of the committed baseline, relative to the repo root.
BASELINE_PATH = Path(__file__).resolve().parent.parent / "benchmarks" / (
    "baseline_visits_per_second.json"
)

#: Benchmarks gated on their recorded visits/sec (the columnar data
#: plane's acceptance metric).  Names match pytest-benchmark's ``name``.
GATED_BENCHMARKS = ("test_crawl_throughput",)


def visits_per_second(results: dict) -> dict[str, float]:
    """``benchmark name -> visits/sec`` for every gated benchmark found."""
    rates: dict[str, float] = {}
    for bench in results.get("benchmarks", ()):
        name = bench.get("name", "")
        if name not in GATED_BENCHMARKS:
            continue
        rate = bench.get("extra_info", {}).get("visits_per_second")
        if rate:
            rates[name] = float(rate)
    return rates


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("results", type=Path, help="pytest-benchmark JSON file")
    parser.add_argument(
        "--baseline",
        type=Path,
        default=BASELINE_PATH,
        help=f"baseline JSON (default: {BASELINE_PATH})",
    )
    parser.add_argument(
        "--max-regression",
        type=float,
        default=0.30,
        help="allowed fractional drop below baseline (default: 0.30)",
    )
    parser.add_argument(
        "--update",
        action="store_true",
        help="write the measured rates out as the new baseline and exit",
    )
    args = parser.parse_args(argv)

    measured = visits_per_second(json.loads(args.results.read_text()))
    if not measured:
        print(
            "error: no gated benchmark with a visits_per_second figure in "
            f"{args.results} (expected one of: {', '.join(GATED_BENCHMARKS)})",
            file=sys.stderr,
        )
        return 2

    if args.update:
        args.baseline.write_text(
            json.dumps(measured, indent=2, sort_keys=True) + "\n"
        )
        print(f"baseline updated: {args.baseline}")
        for name, rate in sorted(measured.items()):
            print(f"  {name}: {rate:,.0f} visits/sec")
        return 0

    baseline = json.loads(args.baseline.read_text())
    failures = []
    for name, rate in sorted(measured.items()):
        reference = baseline.get(name)
        if reference is None:
            print(f"  {name}: {rate:,.0f} visits/sec (no baseline; skipped)")
            continue
        change = rate / reference - 1.0
        status = "ok"
        if change < -args.max_regression:
            status = "REGRESSION"
            failures.append(name)
        print(
            f"  {name}: {rate:,.0f} visits/sec vs baseline "
            f"{reference:,.0f} ({change:+.1%}) {status}"
        )

    if failures:
        print(
            f"error: visits/sec regressed more than "
            f"{args.max_regression:.0%} on: {', '.join(failures)}",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
