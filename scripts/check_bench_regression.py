#!/usr/bin/env python3
"""Gate throughput regressions against a committed baseline.

Reads a ``pytest-benchmark --benchmark-json`` results file, pulls each
gated benchmark's throughput figure (``visits_per_second`` for the crawl
plane, ``reid_users_per_second`` for the population data plane,
``service_visits_per_second`` for the streamed crawl service) from its
``extra_info``, and compares it against the committed baseline
(``benchmarks/baseline_visits_per_second.json``).  A benchmark that
drops more than the allowed fraction below its baseline fails the run;
faster-than-baseline results are reported (and can be promoted with
``--update`` after an intentional improvement lands).

CI runners vary in raw speed, so the committed baseline is deliberately
conservative and the threshold is configurable::

    python scripts/check_bench_regression.py bench-results.json
    python scripts/check_bench_regression.py bench-results.json --max-regression 0.5
    python scripts/check_bench_regression.py bench-results.json --update
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from pathlib import Path

_REPO_ROOT = Path(__file__).resolve().parent.parent
# CI invokes this script without PYTHONPATH=src, so make the package
# importable before reaching for repro.util.fsio.
sys.path.insert(0, str(_REPO_ROOT / "src"))

from repro.util.fsio import atomic_write_lines  # noqa: E402

#: Default location of the committed baseline, relative to the repo root.
BASELINE_PATH = _REPO_ROOT / "benchmarks" / "baseline_visits_per_second.json"

#: Append-only trajectory consumed by the report portal's bench page.
HISTORY_PATH = _REPO_ROOT / "benchmarks" / "history.jsonl"

#: Gated benchmarks and the ``extra_info`` key each records its
#: throughput under.  Names match pytest-benchmark's ``name``; the key
#: also names the metric in history records, so the report portal can
#: chart heterogeneous trajectories side by side.
GATED_BENCHMARKS = {
    "test_crawl_throughput": "visits_per_second",
    "test_reid_throughput": "reid_users_per_second",
    "test_service_throughput": "service_visits_per_second",
}

#: Exit code for "inputs unusable" (missing/unparseable JSON), distinct
#: from 1 (regression) and 2 (results present but nothing gated), so CI
#: can tell a broken gate from a slow crawl.
EXIT_BAD_INPUT = 3


class BadInputError(Exception):
    """A results or baseline file is missing or not valid JSON."""


def _fail_input(message: str) -> None:
    """Report an unusable input on stderr (and the CI step summary)."""
    print(f"error: {message}", file=sys.stderr)
    summary_path = os.environ.get("GITHUB_STEP_SUMMARY")
    if summary_path:
        with open(summary_path, "a", encoding="utf-8") as summary:
            summary.write(f"**bench gate skipped** — {message}\n")
    raise BadInputError(message)


def load_json_file(path: Path, role: str, *, remedy: str = "") -> dict:
    """Parse ``path`` as JSON, failing with a readable message (exit 3
    via :class:`BadInputError`) instead of a traceback when the file is
    missing or corrupt."""
    suffix = f" {remedy}" if remedy else ""
    try:
        text = path.read_text(encoding="utf-8")
    except FileNotFoundError:
        _fail_input(f"{role} file not found: {path}.{suffix}")
    except OSError as exc:
        _fail_input(f"{role} file unreadable: {path} ({exc}).{suffix}")
    try:
        return json.loads(text)
    except json.JSONDecodeError as exc:
        _fail_input(f"{role} file is not valid JSON: {path} ({exc}).{suffix}")
    raise AssertionError("unreachable")


def gated_rates(results: dict) -> dict[str, float]:
    """``benchmark name -> throughput`` for every gated benchmark found."""
    rates: dict[str, float] = {}
    for bench in results.get("benchmarks", ()):
        name = bench.get("name", "")
        metric = GATED_BENCHMARKS.get(name)
        if metric is None:
            continue
        rate = bench.get("extra_info", {}).get(metric)
        if rate:
            rates[name] = float(rate)
    return rates


def append_history(
    history_path: Path, measured: dict[str, float], baseline: dict
) -> int:
    """Append one record per measured benchmark to the history file.

    The whole file is rewritten atomically (read, extend, rename) via
    :func:`repro.util.fsio.atomic_write_lines`, so a crash mid-append
    can never leave a torn line for the report portal to choke on.
    Returns the number of records appended.
    """
    lines: list[str] = []
    if history_path.exists():
        lines = [
            line
            for line in history_path.read_text(encoding="utf-8").splitlines()
            if line.strip()
        ]
    for name, rate in sorted(measured.items()):
        metric = GATED_BENCHMARKS.get(name, "visits_per_second")
        record = {
            "benchmark": name,
            metric: round(rate, 3),
            "metric": metric,
            "baseline": baseline.get(name),
            "commit": os.environ.get("GITHUB_SHA") or None,
        }
        lines.append(json.dumps(record, sort_keys=True))
    history_path.parent.mkdir(parents=True, exist_ok=True)
    atomic_write_lines(history_path, lines)
    return len(measured)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("results", type=Path, help="pytest-benchmark JSON file")
    parser.add_argument(
        "--baseline",
        type=Path,
        default=BASELINE_PATH,
        help=f"baseline JSON (default: {BASELINE_PATH})",
    )
    parser.add_argument(
        "--history",
        type=Path,
        default=HISTORY_PATH,
        help="append visits/sec records to this JSONL trajectory "
        f"(default: {HISTORY_PATH})",
    )
    parser.add_argument(
        "--no-history",
        action="store_true",
        help="skip appending to the bench-history trajectory",
    )
    parser.add_argument(
        "--max-regression",
        type=float,
        default=0.30,
        help="allowed fractional drop below baseline (default: 0.30)",
    )
    parser.add_argument(
        "--update",
        action="store_true",
        help="write the measured rates out as the new baseline and exit",
    )
    args = parser.parse_args(argv)

    try:
        return _run(args)
    except BadInputError:
        return EXIT_BAD_INPUT


def _run(args: argparse.Namespace) -> int:
    measured = gated_rates(load_json_file(args.results, "results"))
    if not measured:
        print(
            "error: no gated benchmark with a throughput figure in "
            f"{args.results} (expected one of: {', '.join(GATED_BENCHMARKS)})",
            file=sys.stderr,
        )
        return 2

    if args.update:
        args.baseline.write_text(
            json.dumps(measured, indent=2, sort_keys=True) + "\n"
        )
        print(f"baseline updated: {args.baseline}")
        for name, rate in sorted(measured.items()):
            metric = GATED_BENCHMARKS.get(name, "visits_per_second")
            print(f"  {name}: {rate:,.0f} {metric}")
        if not args.no_history:
            append_history(args.history, measured, measured)
            print(f"history appended: {args.history}")
        return 0

    baseline = load_json_file(
        args.baseline,
        "baseline",
        remedy="Run with --update to record a fresh baseline.",
    )
    if not args.no_history:
        appended = append_history(args.history, measured, baseline)
        print(f"history appended ({appended} record(s)): {args.history}")
    failures = []
    for name, rate in sorted(measured.items()):
        metric = GATED_BENCHMARKS.get(name, "visits_per_second")
        reference = baseline.get(name)
        if reference is None:
            print(f"  {name}: {rate:,.0f} {metric} (no baseline; skipped)")
            continue
        change = rate / reference - 1.0
        status = "ok"
        if change < -args.max_regression:
            status = "REGRESSION"
            failures.append(name)
        print(
            f"  {name}: {rate:,.0f} {metric} vs baseline "
            f"{reference:,.0f} ({change:+.1%}) {status}"
        )

    if failures:
        print(
            f"error: throughput regressed more than "
            f"{args.max_regression:.0%} on: {', '.join(failures)}",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
